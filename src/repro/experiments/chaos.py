"""Chaos injection for the campaign runner: kill, delay, corrupt.

The campaign runner's recovery paths (worker-death detection, per-cell
watchdogs, result-spill validation, retry/degradation) are only
trustworthy if something exercises them on purpose. A
:class:`ChaosConfig` is a seeded, deterministic plan of misbehavior
shipped to every worker:

* **worker kills** — the worker SIGKILLs itself at the start of every
  ``kill_every``-th cell (by sweep index), modeling a pool worker dying
  mid-cell with no exception, no cleanup, and no result;
* **per-cell delays** — the worker sleeps before running every
  ``delay_every``-th cell (with seeded jitter), modeling stragglers and
  hung cells for the watchdog to reap;
* **spill corruption** — the worker truncates and garbles its own
  committed result spill for every ``corrupt_every``-th cell, modeling
  a torn or bit-rotten handoff file the parent must reject and retry.

Every decision is a pure function of ``(seed, cell index, attempt)`` —
no global RNG, no wall clock — so a chaos campaign is reproducible and
its injected failures land on the same cells in serial and parallel
runs. By default each misbehavior fires only on attempt 1
(``attempts=1``), so retried cells succeed and the campaign's merged
output stays byte-identical to an undisturbed run; raise ``attempts``
to exhaust the retry budget and exercise degradation instead.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class ChaosConfig:
    """A deterministic plan of injected failures (picklable, frozen).

    Periods are by 0-based sweep index: ``kill_every=3`` kills the
    workers of cells 2, 5, 8, ... ``0`` disables that misbehavior.
    ``attempts`` caps how many attempts of an afflicted cell misbehave
    (1 = first attempt only, so one retry always recovers).
    """

    seed: int = 0
    kill_every: int = 0
    delay_every: int = 0
    delay_seconds: float = 0.0
    corrupt_every: int = 0
    attempts: int = 1

    def __post_init__(self) -> None:
        for name in ("kill_every", "delay_every", "corrupt_every"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    @property
    def active(self) -> bool:
        return bool(self.kill_every or self.delay_every or self.corrupt_every)

    # -- the deterministic plan ------------------------------------------

    def _hits(self, period: int, index: int, attempt: int) -> bool:
        if period <= 0 or attempt > self.attempts:
            return False
        return index % period == period - 1

    def should_kill(self, index: int, attempt: int) -> bool:
        """Whether the worker for cell ``index`` self-SIGKILLs."""
        return self._hits(self.kill_every, index, attempt)

    def should_corrupt(self, index: int, attempt: int) -> bool:
        """Whether the worker corrupts its committed result spill."""
        return self._hits(self.corrupt_every, index, attempt)

    def delay(self, index: int, attempt: int) -> float:
        """Seconds the worker sleeps before running cell ``index``
        (seeded jitter in [1x, 2x] so stragglers don't march in step)."""
        if not self._hits(self.delay_every, index, attempt):
            return 0.0
        rng = random.Random(repr((self.seed, index, attempt)))
        return self.delay_seconds * (1.0 + rng.random())


class ChaosController:
    """Applies a :class:`ChaosConfig` inside a campaign worker.

    Constructed in the child process (the config crosses the fork as
    plain data); the parent never sleeps, kills, or corrupts anything
    itself — all chaos is worker-side, exactly like real failures.
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config

    def before_cell(self, index: int, attempt: int) -> None:
        """Inject pre-run chaos: straggler delay, then sudden death."""
        delay = self.config.delay(index, attempt)
        if delay > 0:
            time.sleep(delay)
        if self.config.should_kill(index, attempt):
            # SIGKILL leaves no traceback, no result file, and a
            # negative exitcode — precisely the failure mode the
            # campaign's worker supervision must survive.
            os.kill(os.getpid(), signal.SIGKILL)

    def after_spill(self, index: int, attempt: int, result_path: str) -> None:
        """Corrupt the committed result spill (torn-file model)."""
        if not self.config.should_corrupt(index, attempt):
            return
        corrupt_file(result_path, seed=(self.config.seed, index, attempt))


def corrupt_file(path: str | os.PathLike[str], seed: object = 0) -> None:
    """Deterministically damage a file: truncate to half and overwrite
    the tail with seeded garbage — an unpicklable, unparseable stump."""
    rng = random.Random(repr(seed))
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    keep = size // 2
    garbage = bytes(rng.getrandbits(8) for _ in range(16))
    with open(path, "r+b") as fh:
        fh.truncate(keep)
        fh.seek(max(keep - len(garbage), 0))
        fh.write(garbage)

"""The crash-safe campaign runner: supervised, journaled, resumable sweeps.

:func:`run_campaign` executes the same
:class:`~repro.experiments.table1.CellSpec` list as ``run_all`` /
``run_all_parallel``, but treats every cell as a *supervised job*
rather than a pool task:

* each cell attempt runs in its own forked worker process, which
  commits its results to a crash-atomic pickle spill (tempfile +
  ``os.replace``) and exits — the parent never trusts a worker that
  died before the rename;
* the parent journals every transition (started / retrying / done /
  failed) to an append-only JSONL manifest
  (:mod:`repro.experiments.manifest`), committed atomically, so a
  campaign killed at *any* instant — including mid-commit — leaves a
  parseable journal that ``resume=True`` (CLI ``--resume``) picks up,
  skipping completed cells and re-running only pending or failed ones;
* a per-cell wall-clock watchdog (``cell_timeout``) SIGKILLs hung
  workers — the process-level sibling of the reliability layer's
  step-budget watchdog;
* worker death mid-cell (SIGKILL, OOM, crash) is a *per-cell* event:
  the attempt is retried under a :class:`~repro.reliability.retry`
  backoff policy, and a cell that exhausts its attempts degrades into
  an errored :class:`~repro.experiments.harness.ExperimentResult` —
  exactly the harness's existing degradation contract — while its
  siblings run to completion;
* campaign transitions are published to the ambient :mod:`repro.obs`
  layer as typed events (``cell_started`` / ``cell_retried`` /
  ``worker_died`` / ``cell_finished`` / ``campaign_resumed``) plus
  metrics counters, and the :mod:`~repro.experiments.chaos` harness
  injects worker kills, straggler delays, and spill corruption so all
  of the above is itself tested;
* with ``trace_out=`` (CLI ``--trace-out``) or an ambient metrics
  registry installed, the telemetry plane (:mod:`repro.obs.spans`)
  ships per-worker shards: each attempt records its engine events and
  metrics next to its result spill, sealed *before* the result is
  committed, and the parent folds the committed shards into one
  deterministic merged trace (``replay --check``-clean,
  byte-identical across re-runs and ``jobs`` counts) and one merged
  metrics registry.

Because cells are deterministic and results are journaled in the
stable wire form of :mod:`repro.experiments.io`, a campaign's merged
``(games, checks)`` — interrupted, chaos-ridden, resumed, or not — is
byte-identical (via ``dump_results``) to an uninterrupted serial
``run_all`` over the same cells, except for cells that exhausted their
retries and degraded.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _sentinel_wait
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.cache import atomic_write_bytes
from repro.errors import ReproError
from repro.experiments.chaos import ChaosConfig, ChaosController
from repro.experiments.harness import CheckResult, ExperimentResult
from repro.experiments.manifest import (
    Manifest,
    ManifestWriter,
    load_manifest,
    sweep_digest,
)
from repro.experiments.parallel import _pool_context
from repro.experiments.table1 import CellSpec, cell_specs, run_cell
from repro.obs import (
    CampaignResumeEvent,
    CellEndEvent,
    CellRetryEvent,
    CellStartEvent,
    ShardRef,
    WorkerDeathEvent,
    current_instrumentation,
    merge_shard_metrics,
    merge_shards,
)
from repro.reliability import ExponentialBackoff, ReliabilityConfig, RetryPolicy


class CampaignError(ReproError):
    """A campaign-level failure the runner cannot degrade around."""


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _WorkerTask:
    """Everything one cell attempt needs, as picklable data."""

    spec: CellSpec
    index: int
    attempt: int
    result_path: str
    chaos: ChaosConfig | None
    telemetry: bool = False


def _cell_worker(task: _WorkerTask) -> None:
    """Run one cell attempt and commit its results atomically.

    Runs in a (usually forked) child process. The parent's ambient
    instrumentation is never reused here: its trace sink owns an open
    file handle that must not receive interleaved writes from many
    children. Without telemetry the worker runs silent (the original
    contract); with it, the worker records into its *own* per-attempt
    shard (:class:`~repro.obs.spans.ShardRecorder`) next to the result
    spill. The shard is sealed — footer appended, metrics committed —
    *before* the result spill is renamed into place, so a committed
    result implies complete telemetry: the same happens-before edge the
    campaign journal relies on.
    """
    from repro.obs import ShardRecorder, shard_paths, use_instrumentation

    recorder = None
    if task.telemetry:
        trace_path, metrics_path = shard_paths(
            Path(task.result_path).parent, task.index, task.attempt
        )
        recorder = ShardRecorder(trace_path, metrics_path)
    with use_instrumentation(
        recorder.instrumentation if recorder is not None else None
    ):
        chaos = ChaosController(task.chaos) if task.chaos is not None else None
        if chaos is not None:
            chaos.before_cell(task.index, task.attempt)
        out = run_cell(task.spec)
        if recorder is not None:
            recorder.close()  # telemetry commits strictly before the result
        atomic_write_bytes(
            task.result_path, pickle.dumps(out, protocol=pickle.HIGHEST_PROTOCOL)
        )
        if chaos is not None:
            chaos.after_spill(task.index, task.attempt, task.result_path)


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


@dataclass
class _Active:
    """One in-flight worker under supervision."""

    proc: Any  # multiprocessing.Process (context-specific class)
    index: int
    spec: CellSpec
    attempt: int
    result_path: Path
    deadline: float | None  # monotonic seconds; None = no watchdog


def _obs() -> tuple[Any, Any]:
    """The ambient sink and metrics registry (either may be None)."""
    instr = current_instrumentation()
    if instr is None:
        return None, None
    return getattr(instr, "sink", None), getattr(instr, "metrics", None)


def _emit(event: Any) -> None:
    sink, _ = _obs()
    if sink is not None:
        sink.emit(event)


def _count(name: str, amount: int = 1) -> None:
    _, metrics = _obs()
    if metrics is not None:
        metrics.counter(name).inc(amount)


def _observe(name: str, value: float) -> None:
    _, metrics = _obs()
    if metrics is not None:
        metrics.histogram(name).observe(value)


def run_campaign(
    manifest_path: str | Path,
    quick: bool = False,
    jobs: int = 1,
    reliability: ReliabilityConfig | None = None,
    names: Sequence[str] | None = None,
    resume: bool = False,
    retry: RetryPolicy | None = None,
    max_attempts: int = 3,
    cell_timeout: float | None = None,
    chaos: ChaosConfig | None = None,
    retry_sleep_scale: float = 0.0,
    progress: "Callable[[int, int, str], None] | None" = None,
    meta: Mapping[str, Any] | None = None,
    trace_out: str | Path | None = None,
) -> tuple[list[ExperimentResult], list[CheckResult]]:
    """Run (or resume) the Table 1 sweep as a crash-safe campaign.

    Args:
        manifest_path: the JSONL journal. Fresh campaigns overwrite it;
            ``resume=True`` loads it, verifies the cell fingerprints
            match the requested sweep, skips completed cells, and
            re-runs pending/failed ones.
        quick, reliability, names: the sweep shape, exactly as
            :func:`~repro.experiments.table1.cell_specs` takes them.
        jobs: maximum concurrently supervised workers (>= 1).
        retry: backoff policy granting re-attempts after a worker
            failure; defaults to seeded-jitter exponential backoff with
            ``max_attempts`` total attempts per cell. Delays are the
            policy's modeled units, recorded in the journal/metrics and
            (scaled by ``retry_sleep_scale``) slept in real time.
        cell_timeout: per-attempt wall-clock watchdog in seconds; a
            worker past it is SIGKILLed and the attempt counts as a
            ``timeout`` failure. ``None`` disables the watchdog.
        chaos: a :class:`~repro.experiments.chaos.ChaosConfig` injected
            into every worker (tests the recovery paths themselves).
        retry_sleep_scale: real seconds slept per modeled delay unit
            before a retry is eligible to launch (0 = retry at once).
        progress: ``progress(done, total, name)`` after each terminal
            cell, completed-on-resume cells included.
        meta: extra JSON-able data stored in a fresh manifest's header
            (the CLI records its flags here for ``--resume``).
        trace_out: write the campaign's *merged engine trace* here. Each
            worker records its cell into a per-attempt shard next to its
            result spill; after the last cell the shards of committed
            attempts are folded — in cell-index order, engine run ids
            renumbered globally — into one JSONL trace that ``python -m
            repro.obs.replay --check`` verifies and that is
            byte-identical across re-runs, ``jobs`` counts, and
            chaos-induced retries. Metrics shards are merged the same
            way into the ambient registry (shard shipping also turns on
            when an ambient registry is installed without ``trace_out``).

    Returns:
        ``(games, checks)`` merged in spec order. Cells that exhausted
        their retries appear as errored ``ExperimentResult`` rows (the
        same shape :func:`~repro.experiments.table1.run_cell` degrades
        to); an exhausted *check* cell raises :class:`CampaignError`
        after journaling, since checks have no error column.
    """
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    if max_attempts < 1:
        raise ReproError(f"max_attempts must be >= 1, got {max_attempts}")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ReproError(f"cell_timeout must be > 0, got {cell_timeout}")
    if retry_sleep_scale < 0:
        raise ReproError(
            f"retry_sleep_scale must be >= 0, got {retry_sleep_scale}"
        )
    manifest_path = Path(manifest_path)
    specs = cell_specs(quick=quick, reliability=reliability, names=names)
    total = len(specs)
    results: dict[int, list[ExperimentResult] | list[CheckResult]] = {}
    # Queue entries: (cell index, attempts already made, not-before time).
    pending: deque[tuple[int, int, float]] = deque()

    if resume:
        manifest = load_manifest(manifest_path)
        manifest.verify_specs(specs)
        for index in manifest.completed_indices():
            results[index] = manifest.cell(index).load_results()
        for index in manifest.pending_indices():
            pending.append((index, 0, 0.0))
        writer = ManifestWriter.resume(manifest)
        writer.append(
            {
                "record": "resume",
                "campaign_id": manifest.campaign_id,
                "completed": len(results),
                "pending": len(pending),
            }
        )
        _emit(
            CampaignResumeEvent(
                run=-1,
                campaign_id=manifest.campaign_id,
                completed=len(results),
                pending=len(pending),
            )
        )
        _count("campaign_resumes")
    else:
        writer = ManifestWriter.create(manifest_path, specs, meta=meta)
        for index in range(total):
            pending.append((index, 0, 0.0))

    if retry is None:
        retry = ExponentialBackoff(
            max_attempts=max_attempts, base_delay=1.0, jitter=0.5, seed=0
        )
    retry.reset()

    workdir = manifest_path.with_name(manifest_path.name + ".cells")
    workdir.mkdir(parents=True, exist_ok=True)
    ctx = _pool_context()
    active: list[_Active] = []
    done = len(results)
    # Shard shipping: on when the caller wants a merged trace, or when
    # an ambient metrics registry is installed (the workers' registries
    # fold back into it). Cells completed on a previous run — resumed
    # from the journal, their shards long gone — stay as placeholder
    # refs the merge marks incomplete rather than failing.
    _, ambient_metrics = _obs()
    telemetry = trace_out is not None or ambient_metrics is not None
    shards: dict[int, ShardRef] = {}

    def finish(index: int, name: str) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, name)

    def fail_attempt(job: _Active, reason: str) -> None:
        """One attempt failed; retry if granted, else degrade."""
        delay = retry.grant(job.attempt)
        spec = job.spec
        if delay is not None:
            writer.cell_retrying(job.index, spec.name, job.attempt, reason, delay)
            _emit(
                CellRetryEvent(
                    run=job.index,
                    cell=spec.name,
                    attempt=job.attempt,
                    reason=reason,
                    delay=delay,
                )
            )
            _count("campaign_retries")
            _observe("campaign_retry_delay", delay)
            not_before = (
                time.monotonic() + delay * retry_sleep_scale
                if retry_sleep_scale
                else 0.0
            )
            pending.append((job.index, job.attempt, not_before))
            return
        error = (
            f"cell {spec.name!r} exhausted {job.attempt} attempt(s); "
            f"last failure: {reason}"
        )
        writer.cell_failed(job.index, spec.name, job.attempt, error)
        _emit(
            CellEndEvent(
                run=job.index, cell=spec.name, attempt=job.attempt, status="failed"
            )
        )
        _count("campaign_cells_failed")
        if spec.kind != "game":
            raise CampaignError(
                f"check {error} — check cells have no error column to "
                f"degrade into; resume the manifest to retry it"
            )
        # The same degraded shape run_cell produces for a dead game
        # cell: the campaign completes and reports, never aborts.
        results[job.index] = [
            ExperimentResult(
                experiment=f"cell:{spec.name}",
                description=f"cell {spec.name!r} failed to run",
                error=f"CampaignError: {error}",
            )
        ]
        finish(job.index, spec.name)

    def reap(job: _Active) -> None:
        """A worker exited (or was killed): classify and dispatch."""
        exitcode = job.proc.exitcode
        spec = job.spec
        if exitcode == 0:
            try:
                out = pickle.loads(job.result_path.read_bytes())
                if not isinstance(out, list):
                    raise ReproError(
                        f"result spill holds {type(out).__name__}, not a list"
                    )
            except (OSError, pickle.PickleError, EOFError, ReproError,
                    AttributeError, IndexError, ValueError):
                # Clean exit but torn/garbled spill: the transport
                # failed, not the cell — retry it.
                fail_attempt(job, "corrupt-result")
                return
            finally:
                try:
                    os.unlink(job.result_path)
                except OSError:
                    pass
            results[job.index] = out
            if telemetry:
                # Only the committed attempt's shard is merged; earlier
                # (killed, corrupted) attempts left torn files behind
                # that are swept with the workdir.
                shards[job.index] = ShardRef.locate(
                    workdir, job.index, spec.name, job.attempt
                )
            writer.cell_done(job.index, spec.name, job.attempt, out, spec.kind)
            _emit(
                CellEndEvent(
                    run=job.index,
                    cell=spec.name,
                    attempt=job.attempt,
                    status="done",
                )
            )
            _count("campaign_cells_done")
            finish(job.index, spec.name)
            return
        reason = "killed" if (exitcode is not None and exitcode < 0) else "crashed"
        _emit(
            WorkerDeathEvent(
                run=job.index, cell=spec.name, attempt=job.attempt, exitcode=exitcode
            )
        )
        _count("campaign_worker_deaths")
        fail_attempt(job, reason)

    while pending or active:
        # Launch as many eligible cells as the job cap allows.
        now = time.monotonic()
        deferred: list[tuple[int, int, float]] = []
        while pending and len(active) < jobs:
            index, attempts_made, not_before = pending.popleft()
            if not_before > now:
                deferred.append((index, attempts_made, not_before))
                continue
            attempt = attempts_made + 1
            spec = specs[index]
            result_path = workdir / f"cell-{index:03d}-a{attempt}.pkl"
            try:
                os.unlink(result_path)
            except OSError:
                pass
            task = _WorkerTask(
                spec=spec,
                index=index,
                attempt=attempt,
                result_path=str(result_path),
                chaos=chaos,
                telemetry=telemetry,
            )
            proc = ctx.Process(target=_cell_worker, args=(task,), daemon=True)
            proc.start()
            writer.cell_started(index, spec.name, attempt)
            _emit(
                CellStartEvent(run=index, cell=spec.name, attempt=attempt)
            )
            _count("campaign_cells_started")
            deadline = now + cell_timeout if cell_timeout is not None else None
            active.append(
                _Active(proc, index, spec, attempt, result_path, deadline)
            )
        pending.extend(deferred)
        if not active:
            if pending:
                # Everything is backing off; sleep to the earliest slot.
                now = time.monotonic()
                earliest = min(entry[2] for entry in pending)
                time.sleep(max(earliest - now, 0.0) + 0.001)
            continue

        # Block until a worker exits, a watchdog deadline passes, or a
        # deferred retry becomes eligible.
        now = time.monotonic()
        horizon = 0.5
        for job in active:
            if job.deadline is not None:
                horizon = min(horizon, job.deadline - now)
        for entry in pending:
            if entry[2] > now:
                horizon = min(horizon, entry[2] - now)
        _sentinel_wait(
            [job.proc.sentinel for job in active], timeout=max(horizon, 0.0)
        )

        now = time.monotonic()
        still_active: list[_Active] = []
        for job in active:
            if job.proc.exitcode is not None or not job.proc.is_alive():
                job.proc.join()
                reap(job)
            elif job.deadline is not None and now >= job.deadline:
                # The per-cell watchdog: a hung worker is reaped by
                # force, exactly like the step-budget watchdog reaps a
                # runaway trace — but at the process level.
                job.proc.kill()
                job.proc.join()
                _count("campaign_watchdog_kills")
                fail_attempt(job, "timeout")
            else:
                still_active.append(job)
        active = still_active

    if telemetry:
        refs = [
            shards.get(
                index,
                ShardRef(
                    index=index,
                    name=spec.name,
                    attempt=0,
                    trace_path=None,
                    metrics_path=None,
                ),
            )
            for index, spec in enumerate(specs)
        ]
        sweep = sweep_digest(specs)
        if trace_out is not None:
            report = merge_shards(trace_out, refs, sweep)
            _count("campaign_trace_cells", report.cells)
            _count("campaign_trace_events", report.events)
            if report.dropped:
                _count("campaign_trace_events_dropped", report.dropped)
        if ambient_metrics is not None:
            merge_shard_metrics(ambient_metrics, refs)
        # Sweep every shard file — committed and torn alike — so the
        # workdir can be removed like any fully-reaped campaign's.
        for pattern in ("cell-*.trace.jsonl", "cell-*.metrics.json"):
            for stale in workdir.glob(pattern):
                try:
                    os.unlink(stale)
                except OSError:
                    pass

    try:
        os.rmdir(workdir)  # only if no spills remain
    except OSError:
        pass

    games: list[ExperimentResult] = []
    checks: list[CheckResult] = []
    for index, spec in enumerate(specs):
        out = results.get(index)
        if out is None:  # pragma: no cover - loop invariant
            raise CampaignError(
                f"cell {spec.name!r} (index {index}) never reached a "
                f"terminal state"
            )
        if spec.kind == "game":
            games += out  # type: ignore[arg-type]
        else:
            checks += out  # type: ignore[arg-type]
    return games, checks


def campaign_status(manifest_path: str | Path) -> dict[str, Any]:
    """A summary of a manifest's journaled progress (for tooling)."""
    manifest: Manifest = load_manifest(manifest_path)
    by_status: dict[str, int] = {}
    for index in range(len(manifest.fingerprints)):
        state = manifest.cell(index)
        by_status[state.status] = by_status.get(state.status, 0) + 1
    return {
        "campaign_id": manifest.campaign_id,
        "cells": len(manifest.fingerprints),
        "completed": len(manifest.completed_indices()),
        "pending": len(manifest.pending_indices()),
        "by_status": by_status,
        "records": manifest.records,
    }

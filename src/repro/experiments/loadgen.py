"""Seeded load generation for the search service.

A :class:`LoadSpec` describes a burst the way a ``CellSpec`` describes
a sweep cell: primitive frozen data, fully reproducible from its seed.
:func:`generate_requests` expands it into the per-client
:class:`~repro.service.requests.RequestSpec` streams (start vertices
drawn Zipfian over the store's canonical vertex order — rank 0 is the
hottest start, the contention the shared cache exists to absorb).

Three drivers:

* :func:`closed_loop` — deterministic lockstep: one driver thread
  round-robins the logical clients, submitting each next request only
  after the previous completes. Execution is fully serialized no
  matter how many workers the service runs, so metrics snapshots are
  byte-identical across re-runs — the CI smoke's determinism check.
* :func:`closed_loop_threaded` — real closed-loop concurrency: one
  thread per client, each with at most one request in flight. Totals
  (reads saved by sharing) remain meaningful; schedules do not.
* :func:`open_loop` — submit everything as fast as the queue accepts,
  collecting typed sheds instead of blocking; exercises backpressure.
"""

from __future__ import annotations

import bisect
import itertools
import random
import threading
from dataclasses import dataclass

from repro.errors import ReproError, ServiceError
from repro.service.requests import RequestSpec, run_request
from repro.service.server import RequestOutcome, SearchService
from repro.service.stores import ServiceStore


@dataclass(frozen=True)
class LoadSpec:
    """One reproducible load burst, as primitive picklable data.

    ``tenants`` are assigned to clients round-robin; ``zipf_s`` is the
    skew of the start-vertex distribution (larger = hotter head).
    """

    clients: int = 4
    requests_per_client: int = 8
    num_steps: int = 256
    workload: str = "walk"
    tenants: tuple = ("alpha", "beta")
    zipf_s: float = 1.1
    zipf_ranks: int = 64
    seed: int = 0


def zipf_sampler(
    rng: random.Random, num_ranks: int, s: float
) -> "_ZipfSampler":
    """A callable drawing ranks ``0..num_ranks-1`` with ``P(k) ∝
    1/(k+1)^s`` from the given seeded RNG."""
    return _ZipfSampler(rng, num_ranks, s)


class _ZipfSampler:
    def __init__(self, rng: random.Random, num_ranks: int, s: float) -> None:
        if num_ranks < 1:
            raise ReproError(f"need >= 1 rank, got {num_ranks}")
        self._rng = rng
        weights = [1.0 / (k + 1) ** s for k in range(num_ranks)]
        self._cumulative = list(itertools.accumulate(weights))

    def __call__(self) -> int:
        point = self._rng.random() * self._cumulative[-1]
        return bisect.bisect_left(self._cumulative, point)


def generate_requests(
    spec: LoadSpec, store: ServiceStore
) -> list[list[RequestSpec]]:
    """The burst's request streams, one list per client, all derived
    deterministically from ``spec.seed``."""
    if spec.clients < 1:
        raise ReproError(f"need >= 1 client, got {spec.clients}")
    if not spec.tenants:
        raise ReproError("need at least one tenant")
    ranks = min(spec.zipf_ranks, len(store.vertices))
    streams: list[list[RequestSpec]] = []
    for client in range(spec.clients):
        tenant = str(spec.tenants[client % len(spec.tenants)])
        rng = random.Random(spec.seed * 1_000_003 + client)
        sample = zipf_sampler(rng, ranks, spec.zipf_s)
        streams.append(
            [
                RequestSpec(
                    name=f"c{client}r{index}",
                    tenant=tenant,
                    workload=spec.workload,
                    start_rank=sample(),
                    num_steps=spec.num_steps,
                    seed=rng.randrange(2**31),
                )
                for index in range(spec.requests_per_client)
            ]
        )
    return streams


def closed_loop(
    service: SearchService, spec: LoadSpec
) -> list[RequestOutcome]:
    """Deterministic lockstep closed loop (see the module docstring).

    Clients advance round-robin; each waits for its request before the
    next client submits, so the whole burst is one serialized schedule.
    """
    streams = generate_requests(spec, service.store)
    outcomes: list[RequestOutcome] = []
    for index in range(spec.requests_per_client):
        for stream in streams:
            outcomes.append(service.submit(stream[index]).result())
    return outcomes


def closed_loop_threaded(
    service: SearchService, spec: LoadSpec
) -> list[RequestOutcome]:
    """Real closed-loop concurrency: one thread per client, one request
    in flight each. Outcomes are returned in (client, request) order;
    the interleaving itself is up to the scheduler."""
    streams = generate_requests(spec, service.store)
    results: list[list[RequestOutcome]] = [[] for _ in streams]
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def drive(client: int) -> None:
        try:
            for request in streams[client]:
                results[client].append(service.submit(request).result())
        # Collected for a cross-thread re-raise below, not swallowed.
        except BaseException as exc:  # lint: ignore[RL006]
            with errors_lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(client,), name=f"client-{client}")
        for client in range(len(streams))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return [outcome for stream in results for outcome in stream]


def open_loop(
    service: SearchService, spec: LoadSpec
) -> tuple[list[RequestOutcome], list[ServiceError]]:
    """Submit the whole burst without waiting; typed rejections are
    collected, never raised — the backpressure experiment."""
    streams = generate_requests(spec, service.store)
    futures = []
    sheds: list[ServiceError] = []
    for index in range(spec.requests_per_client):
        for stream in streams:
            try:
                futures.append(service.submit(stream[index]))
            except ServiceError as exc:
                sheds.append(exc)
    outcomes = []
    for future in futures:
        try:
            outcomes.append(future.result())
        except ServiceError as exc:
            sheds.append(exc)
    return outcomes, sheds


def isolated_block_reads(spec: LoadSpec, store: ServiceStore) -> int:
    """The baseline the tentpole is measured against: every client's
    stream run serially with *no* shared cache — each fault is a disk
    read. Returns the total blocks read across all clients."""
    total = 0
    for stream in generate_requests(spec, store):
        for request in stream:
            trace, _ = run_request(store, request, cache=None)
            total += trace.blocks_read
    return total

"""Experiment harness.

Wraps one adversary-vs-blocking game into a record carrying the
measured speed-up next to the paper's predicted envelope, so the
Table 1 reproduction is a list of these records and "does the paper
hold" is a pair of boolean columns.

The harness is *hardened*: a per-run :class:`~repro.errors.ReproError`
(a lost block that no replica covers, an exhausted step budget, a bad
configuration) is caught into :attr:`ExperimentResult.error` instead of
killing the sweep, so a full Table 1 run over an unreliable disk always
completes and reports its degraded cells.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.blocking import Blocking
from repro.core.engine import Adversary, Searcher
from repro.core.model import ModelParams
from repro.core.policies import BlockChoicePolicy
from repro.core.stats import SearchTrace
from repro.errors import ReproError
from repro.graphs.base import Graph
from repro.paging.eviction import EvictionPolicy
from repro.reliability import ReliabilityConfig

if TYPE_CHECKING:
    from repro.obs.instrument import InstrumentationHook
    from repro.obs.profiling import PhaseProfiler


@dataclass
class ExperimentResult:
    """One measured row of the reproduction.

    ``lower_bound`` is the guarantee of the blocking construction (the
    paper's lower bound on sigma); ``upper_bound`` is the adversary's
    cap (the paper's upper bound). ``sigma`` is measured from the run;
    both bounds should bracket it.

    ``error`` is set when the run died on a :class:`ReproError` (e.g. a
    permanently lost block with no surviving replica, or the watchdog's
    step budget). Such a cell is *degraded*, not failed: its statistics
    come from the partial trace when one was recoverable, and the bound
    columns report "not applicable".
    """

    experiment: str
    description: str
    params: dict = field(default_factory=dict)
    sigma: float = math.nan
    steady_sigma: float = math.nan
    min_gap: float = math.nan
    faults: int = 0
    steps: int = 0
    lower_bound: float | None = None
    upper_bound: float | None = None
    storage_blowup: float | None = None
    trace: SearchTrace | None = field(default=None, repr=False)
    error: str | None = None

    @property
    def lower_holds(self) -> bool | None:
        """Whether the measured sigma respects the construction's
        guarantee (None when no lower bound applies, or when the run
        errored and the bound is unverifiable). Uses the steady
        speed-up: the compulsory start-up fault is not the blocking's
        fault."""
        if self.lower_bound is None or self.error is not None:
            return None
        return self.steady_sigma >= self.lower_bound - 1e-9

    @property
    def upper_holds(self) -> bool | None:
        """Whether the adversary kept sigma under the paper's cap."""
        if self.upper_bound is None or self.error is not None:
            return None
        return self.sigma <= self.upper_bound + 1e-9

    @property
    def holds(self) -> bool:
        """Both applicable bounds respected."""
        return (self.lower_holds is not False) and (self.upper_holds is not False)


def run_game(
    experiment: str,
    description: str,
    graph: Graph,
    blocking: Blocking,
    policy: BlockChoicePolicy,
    model: ModelParams,
    adversary: Adversary,
    num_steps: int,
    lower_bound: float | None = None,
    upper_bound: float | None = None,
    params: Mapping | None = None,
    eviction: EvictionPolicy | None = None,
    validate_moves: bool = False,
    reliability: ReliabilityConfig | None = None,
    catch_errors: bool = True,
    instrumentation: "InstrumentationHook | None" = None,
    profiler: "PhaseProfiler | None" = None,
) -> ExperimentResult:
    """Play the adversary game and package the outcome.

    Move validation defaults off here (the harness runs long traces
    against trusted adversaries; unit tests run with validation on).

    With ``catch_errors`` (the default) any :class:`ReproError` raised
    during the run — including reliability-layer block losses and the
    step-budget watchdog — becomes a degraded cell with
    :attr:`ExperimentResult.error` set and statistics recovered from
    the partial trace, so sweeps survive individual run failures.

    ``instrumentation`` is forwarded to the :class:`Searcher` (omit it
    to inherit any ambient hook installed via
    :func:`repro.obs.use_instrumentation`). ``profiler`` times the game
    under the phase ``game:<experiment>``.
    """
    result = ExperimentResult(
        experiment=experiment,
        description=description,
        params=dict(params or {}),
        lower_bound=lower_bound,
        upper_bound=upper_bound,
    )
    timer = (
        profiler.phase(f"game:{experiment}")
        if profiler is not None
        else contextlib.nullcontext()
    )
    try:
        with timer:
            searcher = Searcher(
                graph,
                blocking,
                policy,
                model,
                eviction=eviction,
                validate_moves=validate_moves,
                reliability=reliability,
                instrumentation=instrumentation,
            )
            trace = searcher.run_adversary(adversary, num_steps)
    except ReproError as exc:
        if not catch_errors:
            raise
        result.error = f"{type(exc).__name__}: {exc}"
        trace = getattr(exc, "trace", None)
        if trace is None:
            return result
    result.sigma = trace.speedup
    result.steady_sigma = trace.steady_speedup
    result.min_gap = float(trace.min_gap)
    result.faults = trace.faults
    result.steps = trace.steps
    result.storage_blowup = blocking.storage_blowup()
    result.trace = trace
    return result


@dataclass
class CheckResult:
    """A closed-form check (Example 1/2 radii, ball-cover cardinality):
    a measured quantity against the paper's predicted value with an
    allowed deviation."""

    experiment: str
    description: str
    expected: float
    measured: float
    tolerance: float = 0.0

    @property
    def holds(self) -> bool:
        return abs(self.measured - self.expected) <= self.tolerance + 1e-9

    @property
    def error(self) -> float:
        return self.measured - self.expected


def run_worst_case(
    experiment: str,
    description: str,
    graph: Graph,
    blocking: Blocking,
    policy: BlockChoicePolicy,
    model: ModelParams,
    adversaries: Mapping[str, Adversary],
    num_steps: int,
    lower_bound: float | None = None,
    upper_bound: float | None = None,
    params: Mapping | None = None,
    eviction: EvictionPolicy | None = None,
    validate_moves: bool = False,
    reliability: ReliabilityConfig | None = None,
    catch_errors: bool = True,
    instrumentation: "InstrumentationHook | None" = None,
    profiler: "PhaseProfiler | None" = None,
) -> ExperimentResult:
    """Play several adversaries and keep the *worst* outcome (smallest
    sigma) — a stronger check of a construction's lower bound than any
    single adversary, since the guarantee must hold against all walks.

    The winning adversary's name is recorded in ``params['adversary']``.
    Eviction policy, move validation, the reliability model, and the
    instrumentation/profiler hooks are forwarded to every game. A
    completed game always beats a degraded one for "worst"; among
    degraded games the first is kept.
    """
    worst: ExperimentResult | None = None
    for name, adversary in adversaries.items():
        result = run_game(
            experiment,
            description,
            graph,
            blocking,
            policy,
            model,
            adversary,
            num_steps,
            lower_bound=lower_bound,
            upper_bound=upper_bound,
            params=dict(params or {}, adversary=name),
            eviction=eviction,
            validate_moves=validate_moves,
            reliability=reliability,
            catch_errors=catch_errors,
            instrumentation=instrumentation,
            profiler=profiler,
        )
        if (
            worst is None
            or (worst.error is not None and result.error is None)
            or (result.error is None and result.sigma < worst.sigma)
        ):
            worst = result
    assert worst is not None, "no adversaries given"
    return worst

"""Parallel sweep execution: the Table 1 cells across worker processes.

Every cell of the sweep is independent — it builds its own graph,
blocking, and adversary, and the engine's runs are deterministic (a
pure function of the cell's parameters and seeds, independent of the
process they run in; the recency index and holder sets are kept in
insertion order precisely so hash randomization cannot leak in). That
makes the sweep embarrassingly parallel: shard the
:func:`~repro.experiments.table1.cell_specs` list over a process pool,
run each cell with the same :func:`~repro.experiments.table1.run_cell`
the serial path uses, and concatenate the outputs in spec order. The
merged result is **bit-identical** to ``run_all`` — the CI benchmark
job asserts exactly that by byte-comparing the two JSON dumps.

Degraded cells stay degraded: a cell that dies on a
:class:`~repro.errors.ReproError` (an unreadable block under fault
injection, an impossible construction) produces the same errored
:class:`~repro.experiments.harness.ExperimentResult` in a worker as it
does inline, and its siblings are untouched.

Workers are forked where the platform allows it, so constructions
already in the parent's cache (:mod:`repro.cache`) are inherited for
free. Ambient tracing/metrics hooks cannot span a pool directly — a
sink's open file handle must not receive interleaved writes from many
processes — so ``trace_out=`` (CLI ``--jobs N --trace-out``) routes
through the telemetry plane instead: each worker records its cell into
a private shard in a spool directory, and the parent folds the shards
into one merged trace and metrics registry (:mod:`repro.obs.spans`),
byte-identical to what a serial run would have recorded. ``--profile``
remains per-process ambient and still excludes ``--jobs``.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ReproError
from repro.experiments.harness import CheckResult, ExperimentResult
from repro.experiments.table1 import CellSpec, cell_specs, run_cell
from repro.obs import (
    ShardRecorder,
    ShardRef,
    current_instrumentation,
    merge_shard_metrics,
    merge_shards,
    shard_paths,
    use_instrumentation,
)
from repro.reliability import ReliabilityConfig


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork if available (cheap, inherits caches and the hash seed);
    otherwise the platform default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def _shard_cell(
    task: tuple[CellSpec, int, str],
) -> list[ExperimentResult] | list[CheckResult]:
    """Run one cell with its engine events and metrics spooled to a
    per-cell shard (the pool-worker side of the telemetry plane).

    The :class:`~repro.obs.spans.ShardRecorder` made ambient here
    shadows whatever instrumentation the worker inherited from the
    forked parent, so the parent's open sink handle never sees
    interleaved writes.
    """
    spec, index, spool = task
    trace_path, metrics_path = shard_paths(spool, index, 1)
    with ShardRecorder(trace_path, metrics_path) as recorder:
        with use_instrumentation(recorder.instrumentation):
            return run_cell(spec)


def run_all_parallel(
    quick: bool = False,
    jobs: int = 2,
    reliability: ReliabilityConfig | None = None,
    progress: "Callable[[int, int, str], None] | None" = None,
    names: Sequence[str] | None = None,
    trace_out: str | Path | None = None,
) -> tuple[list[ExperimentResult], list[CheckResult]]:
    """Run the Table 1 sweep with cells sharded over ``jobs`` processes.

    Same signature contract as :func:`~repro.experiments.table1.run_all`
    (minus the profiler, which is ambient per process): the returned
    ``(games, checks)`` lists are identical to a serial run — cells are
    dispatched eagerly but merged in spec order, and each cell's
    results are self-contained. ``names`` restricts the sweep to a
    subset of cells (mostly for tests).

    ``trace_out`` records every cell's engine events through the
    telemetry plane — per-worker shards in a temporary spool, folded
    into one merged JSONL trace (``replay --check``-clean, run ids
    globally renumbered, byte-identical across ``jobs`` counts). With
    an ambient metrics registry installed, the workers' registries are
    folded into it the same way whenever the sweep spools (always under
    ``trace_out``; in the pool path otherwise).

    ``jobs <= 1`` degenerates to an in-process loop over the same
    specs, so callers can wire a ``--jobs`` flag straight through.
    """
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    specs = cell_specs(quick=quick, reliability=reliability, names=names)
    total = len(specs)
    instr = current_instrumentation()
    ambient_metrics = getattr(instr, "metrics", None) if instr is not None else None
    pooled = jobs > 1 and total > 1
    telemetry = trace_out is not None or (pooled and ambient_metrics is not None)
    spool = Path(tempfile.mkdtemp(prefix="repro-shards-")) if telemetry else None
    outputs: list[list[ExperimentResult] | list[CheckResult]]
    try:
        if not pooled:
            outputs = []
            for done, spec in enumerate(specs, start=1):
                if spool is not None:
                    outputs.append(_shard_cell((spec, done - 1, str(spool))))
                else:
                    outputs.append(run_cell(spec))
                if progress is not None:
                    progress(done, total, spec.name)
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=min(jobs, total)) as pool:
                outputs = []
                # Ordered imap: results arrive (and report progress) in
                # spec order while cells execute out of order in the pool.
                worker: Any = _shard_cell if spool is not None else run_cell
                tasks: Any = (
                    [(spec, index, str(spool)) for index, spec in enumerate(specs)]
                    if spool is not None
                    else specs
                )
                for done, out in enumerate(
                    pool.imap(worker, tasks, chunksize=1), start=1
                ):
                    outputs.append(out)
                    if progress is not None:
                        progress(done, total, specs[done - 1].name)
        if spool is not None:
            from repro.experiments.manifest import sweep_digest

            refs = [
                ShardRef.locate(spool, index, spec.name, 1)
                for index, spec in enumerate(specs)
            ]
            if trace_out is not None:
                merge_shards(trace_out, refs, sweep_digest(specs))
            if ambient_metrics is not None:
                merge_shard_metrics(ambient_metrics, refs)
    finally:
        if spool is not None:
            shutil.rmtree(spool, ignore_errors=True)
    games: list[ExperimentResult] = []
    checks: list[CheckResult] = []
    for spec, out in zip(specs, outputs):
        if spec.kind == "game":
            games += out  # type: ignore[arg-type]
        else:
            checks += out  # type: ignore[arg-type]
    return games, checks


def _apply_kwargs(call: tuple[Callable[..., Any], Mapping[str, Any]]) -> Any:
    func, kwargs = call
    return func(**kwargs)


def map_rows(
    func: Callable[..., Any],
    kwargs_grid: Sequence[Mapping[str, Any]],
    jobs: int = 1,
) -> list[Any]:
    """Map a row function over a parameter grid, optionally in parallel.

    This is the sweep-grid counterpart of :func:`run_all_parallel`:
    ``func`` must be a module-level (hence picklable) callable — the
    Table 1 row functions and the sweep workers qualify — and each
    mapping in ``kwargs_grid`` is one call's keyword arguments.
    Results come back in grid order regardless of completion order, so
    ``jobs > 1`` returns exactly what the serial loop would.
    """
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    calls = [(func, kwargs) for kwargs in kwargs_grid]
    if jobs == 1 or len(calls) <= 1:
        return [_apply_kwargs(call) for call in calls]
    ctx = _pool_context()
    with ctx.Pool(processes=min(jobs, len(calls))) as pool:
        return pool.map(_apply_kwargs, calls, chunksize=1)


def default_jobs() -> int:
    """A sensible ``--jobs`` default: the CPUs *this process may use*.

    ``os.sched_getaffinity(0)`` respects CPU affinity masks and cgroup
    cpusets (containerized CI typically grants far fewer CPUs than the
    host machine has), so the fork pool is not oversubscribed there;
    platforms without it fall back to ``os.cpu_count()``.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


__all__ = [
    "CellSpec",
    "default_jobs",
    "map_rows",
    "run_all_parallel",
]

"""Table 1 reproduction: one runner per row of the paper's summary.

Each function plays the paper's blocking against the paper's adversary
(and, where instructive, against stronger/weaker ones) and returns
:class:`~repro.experiments.harness.ExperimentResult` records whose
``lower_bound``/``upper_bound`` columns carry the paper's predicted
envelope. Default parameters are sized so the full sweep runs on a
laptop in minutes; benchmarks shrink them further.

Experiment ids match DESIGN.md: ``T1-R1`` .. ``T1-R10``, ``K-LB``,
``L9``, ``EX1``, ``EX2``, ``BC``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:
    from repro.obs.profiling import PhaseProfiler

from repro.adversaries import (
    DiagonalCorridorAdversary,
    GreedyUncoveredAdversary,
    GridCorridorAdversary,
    RandomWalkAdversary,
    RootLeafAdversary,
    SpanningTreeCircuitAdversary,
    SteinerTourAdversary,
    UniformCornerAdversary,
)
from repro.analysis import radii, theory
from repro.analysis.ballcover import (
    ball_cover_corollary2,
    ball_cover_matching,
    ball_cover_packing,
    is_ball_cover,
    vertex_cover_2approx,
)
from repro.analysis.neighborhoods import ball_volume
from repro.blockings import (
    FarthestFaultPolicy,
    MostInteriorPolicy,
    contiguous_1d_blocking,
    grid_lemma13_blocking,
    lemma13_blocking,
    naive_subtree_blocking,
    offset_1d_blocking,
    offset_grid_blocking,
    overlapped_tree_blocking,
    sheared_grid_blocking,
    theorem4_blocking,
    theorem6_blocking,
    uniform_grid_blocking,
)
from repro.core.blocking import ExplicitBlocking
from repro.core.engine import Searcher
from repro.core.model import ModelParams
from repro.core.policies import FirstBlockPolicy
from repro.errors import ReproError
from repro.experiments.harness import CheckResult, ExperimentResult, run_game
from repro.reliability import ReliabilityConfig
from repro.graphs import (
    CompleteTree,
    GridGraph,
    InfiniteDiagonalGridGraph,
    InfiniteGridGraph,
    complete_graph,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)


# ---------------------------------------------------------------------------
# T1-R1: complete d-ary trees.
# ---------------------------------------------------------------------------


def tree_row(
    block_size: int = 1023,
    arity: int = 2,
    height: int = 300,
    num_steps: int = 20_000,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """Row 1: trees. The Lemma 17 overlapped blocking (s=2) against the
    Theorem 7 root-leaf adversary must land between ``lg B/(2 lg d)``
    and the finite-height Theorem 7 cap; the naive s=1 subtree blocking
    against the greedy adversary collapses to ``sigma ~ 2``."""
    tree = CompleteTree(arity, height)
    model = ModelParams(block_size, 2 * block_size)
    lower = theory.tree_lower_s2(block_size, arity)
    upper = theory.tree_upper_finite(
        block_size, arity, model.memory_size, height
    )
    results = [
        run_game(
            "T1-R1",
            "tree: Lemma 17 overlapped blocking vs Theorem 7 adversary",
            tree,
            overlapped_tree_blocking(tree, block_size),
            MostInteriorPolicy(),
            model,
            RootLeafAdversary(tree),
            num_steps,
            reliability=reliability,
            lower_bound=lower,
            upper_bound=upper,
            params={"B": block_size, "d": arity, "h": height, "s": 2},
        ),
        run_game(
            "T1-R1",
            "tree: naive s=1 subtree blocking vs greedy adversary (collapse)",
            tree,
            naive_subtree_blocking(tree, block_size),
            FirstBlockPolicy(),
            model,
            GreedyUncoveredAdversary(tree, tree.root),
            min(num_steps, 4_000),
            reliability=reliability,
            lower_bound=None,
            upper_bound=upper,
            params={"B": block_size, "d": arity, "h": height, "s": 1},
        ),
        run_game(
            "T1-R1",
            "tree: Lemma 17 overlapped blocking vs greedy adversary",
            tree,
            overlapped_tree_blocking(tree, block_size),
            MostInteriorPolicy(),
            model,
            GreedyUncoveredAdversary(tree, tree.root),
            min(num_steps, 4_000),
            reliability=reliability,
            lower_bound=lower,
            upper_bound=upper,
            params={"B": block_size, "d": arity, "h": height, "s": 2},
        ),
    ]
    return results


# ---------------------------------------------------------------------------
# T1-R2: one-dimensional grids.
# ---------------------------------------------------------------------------


def grid1d_row(
    block_size: int = 64, num_steps: int = 20_000,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """Row 2: the 1-D grid. Contiguous s=1 blocking achieves exactly
    ``B`` (Lemmas 18/20); the offset s=2 blocking achieves ``B/2``
    with only ``M >= B``."""
    graph = InfiniteGridGraph(1)
    results = [
        run_game(
            "T1-R2",
            "1-D grid: contiguous s=1 blocking vs corridor adversary",
            graph,
            contiguous_1d_blocking(block_size),
            FirstBlockPolicy(),
            ModelParams(block_size, 2 * block_size),
            GridCorridorAdversary(1, block_size, 2 * block_size),
            num_steps,
            reliability=reliability,
            lower_bound=theory.grid1d_lower_s1(block_size),
            upper_bound=theory.grid_upper(block_size, 1),
            params={"B": block_size, "d": 1, "s": 1},
        ),
        run_game(
            "T1-R2",
            "1-D grid: offset s=2 blocking (M = B) vs corridor adversary",
            graph,
            offset_1d_blocking(block_size),
            MostInteriorPolicy(),
            ModelParams(block_size, block_size),
            GridCorridorAdversary(1, block_size, block_size),
            num_steps,
            reliability=reliability,
            lower_bound=theory.grid1d_lower_s2(block_size),
            upper_bound=theory.grid_upper(block_size, 1),
            params={"B": block_size, "d": 1, "s": 2},
        ),
    ]
    return results


def grid1d_finite_row(
    block_size: int = 32,
    rho: int = 4,
    num_steps: int = 6_000,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """Lemma 19: on a *finite* path of n = rho*M vertices the cap
    tightens to ``rho/(rho-1) B - B/((rho-1)M)`` — boundary effects,
    measured. The adversary sweeps the path end to end repeatedly."""
    memory = 2 * block_size
    n = rho * memory
    graph = path_graph(n)
    # An end-to-end sweep repeated: the Lemma 19 walk.
    sweep = list(range(n)) + list(range(n - 2, 0, -1))
    path = []
    while len(path) <= num_steps:
        path.extend(sweep)
    path = path[: num_steps + 1]
    blocking = ExplicitBlocking(
        block_size,
        {
            i: set(range(i * block_size, (i + 1) * block_size))
            for i in range(n // block_size)
        },
    )
    description = f"finite 1-D path (n={n}): contiguous s=1 vs end-to-end sweeps"
    result = ExperimentResult(
        experiment="T1-R2-FIN",
        description=description,
        params={"B": block_size, "n": n, "rho": n / memory},
        lower_bound=None,
        upper_bound=theory.grid1d_upper_finite(block_size, memory, n),
    )
    searcher = Searcher(
        graph,
        blocking,
        FirstBlockPolicy(),
        ModelParams(block_size, memory),
        validate_moves=False,
        reliability=reliability,
    )
    try:
        trace = searcher.run_path(path)
    except ReproError as exc:
        result.error = f"{type(exc).__name__}: {exc}"
        trace = getattr(exc, "trace", None)
        if trace is None:
            return [result]
    result.sigma = trace.speedup
    result.steady_sigma = trace.steady_speedup
    result.min_gap = float(trace.min_gap)
    result.faults = trace.faults
    result.steps = trace.steps
    result.storage_blowup = blocking.storage_blowup()
    result.trace = trace
    return [result]


# ---------------------------------------------------------------------------
# T1-R3 / T1-R4: two-dimensional grids.
# ---------------------------------------------------------------------------


def grid2d_rows(
    block_size: int = 64, num_steps: int = 20_000,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """Rows 3-4: the 2-D grid, s=1 brick (Lemma 23) and s=2 offset
    (Lemma 22) blockings against the Lemma 21 corridor adversary."""
    graph = InfiniteGridGraph(2)
    upper = theory.grid_upper(block_size, 2)
    return [
        run_game(
            "T1-R3",
            "2-D grid: brick s=1 blocking (Lemma 23) vs corridor adversary",
            graph,
            sheared_grid_blocking(2, block_size),
            FirstBlockPolicy(),
            ModelParams(block_size, 3 * block_size),
            GridCorridorAdversary(2, block_size, 3 * block_size),
            num_steps,
            reliability=reliability,
            lower_bound=theory.grid2d_lower_s1(block_size),
            upper_bound=upper,
            params={"B": block_size, "d": 2, "s": 1},
        ),
        run_game(
            "T1-R4",
            "2-D grid: offset s=2 blocking (Lemma 22) vs corridor adversary",
            graph,
            offset_grid_blocking(2, block_size),
            FarthestFaultPolicy(graph),
            ModelParams(block_size, 2 * block_size),
            GridCorridorAdversary(2, block_size, 2 * block_size),
            num_steps,
            reliability=reliability,
            lower_bound=theory.grid2d_lower_s2(block_size),
            upper_bound=upper,
            params={"B": block_size, "d": 2, "s": 2},
        ),
    ]


# ---------------------------------------------------------------------------
# T1-R5 / T1-R6: d-dimensional grids.
# ---------------------------------------------------------------------------


def gridd_rows(
    dim: int = 3, block_size: int = 216, num_steps: int = 15_000,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """Row 5: the s=B compact-neighborhood blocking (Lemma 27) on a
    d-dimensional grid against the Lemma 24 corridor adversary."""
    graph = InfiniteGridGraph(dim)
    blocking = grid_lemma13_blocking(dim, block_size)
    return [
        run_game(
            "T1-R5",
            f"{dim}-D grid: s=B ball blocking (Lemma 27) vs corridor adversary",
            graph,
            blocking,
            FirstBlockPolicy(),
            ModelParams(block_size, block_size),
            GridCorridorAdversary(dim, block_size, block_size),
            num_steps,
            reliability=reliability,
            # The construction guarantees exactly its ball radius; the
            # paper's asymptotic form of that radius is (1/2e) d B^(1/d).
            lower_bound=float(blocking.radius),
            upper_bound=theory.grid_upper(block_size, dim),
            params={"B": block_size, "d": dim, "s": blocking.storage_blowup()},
        ),
    ]


def gridd_reduced_rows(
    dim: int = 3,
    extent: int = 9,
    block_size: int = 63,
    num_steps: int = 8_000,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """Row 6: the reduced-blow-up blockings (Theorems 4 and 6) on a
    d-dimensional torus (finite, boundaryless, perfectly uniform),
    against the greedy adversary. The paper's guarantees: speed-up
    ``>= ceil(r^-(B)/2)`` with blow-up ``<= min{3B/r^-(B) (Thm 4),
    B/k^-(r^-(B)/4) (Thm 6)}``."""
    graph = torus_graph((extent,) * dim)
    r_minus = radii.min_radius(graph, block_size)
    lower = theory.general_lower_ballcover(r_minus)
    r_plus = radii.max_radius(graph, block_size)
    upper = theory.steiner_upper(r_plus)
    results = []
    for name, builder, blowup_bound in (
        (
            "Theorem 4 (Corollary 2 cover)",
            theorem4_blocking,
            theory.thm4_blowup(block_size, r_minus),
        ),
        (
            "Theorem 6 (ball-packing cover)",
            theorem6_blocking,
            theory.thm6_blowup(
                block_size,
                radii.min_ball_volume(graph, max(int(r_minus) // 4, 0)),
            ),
        ),
    ):
        blocking, policy = builder(graph, block_size)
        result = run_game(
            "T1-R6",
            f"{dim}-D torus: {name} vs greedy adversary",
            graph,
            blocking,
            policy,
            ModelParams(block_size, block_size),
            GreedyUncoveredAdversary(graph, next(iter(graph.vertices()))),
            num_steps,
            reliability=reliability,
            lower_bound=lower,
            upper_bound=upper,
            params={
                "B": block_size,
                "d": dim,
                "n": len(graph),
                "r_minus": r_minus,
                "blowup_bound": blowup_bound,
            },
        )
        results.append(result)
    return results


# ---------------------------------------------------------------------------
# T1-R7 / T1-R8: isothetic hypercube blockings and the redundancy gap.
# ---------------------------------------------------------------------------


def isothetic_rows(
    dim: int = 2, block_size: int = 64, num_steps: int = 15_000,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """Rows 7-8: isothetic hypercube blockings.

    * s=2 offset blocking vs the corridor adversary: sigma in
      ``[B^(1/d)/4, d B^(1/d)]`` (Lemma 26).
    * sheared s=1 blocking vs the corridor adversary: sigma >=
      ``B^(1/d)/(2 d^2)`` (Lemma 28).
    * *uniform* s=1 blocking vs the corner-loop adversary: sigma <=
      ``(B^(1/d) + d)/(d + 1)`` — Lemma 31's cap, realized on the
      tessellation with the worst (degree ``2^d``) complexes.
    """
    graph = InfiniteGridGraph(dim)
    side = uniform_grid_blocking(dim, block_size).tessellation.side
    return [
        run_game(
            "T1-R7",
            f"{dim}-D grid: offset s=2 hypercubes vs corridor adversary",
            graph,
            offset_grid_blocking(dim, block_size),
            FarthestFaultPolicy(graph),
            ModelParams(block_size, 2 * block_size),
            GridCorridorAdversary(dim, block_size, 2 * block_size),
            num_steps,
            reliability=reliability,
            lower_bound=theory.isothetic_s2_lower(block_size, dim),
            upper_bound=theory.grid_upper(block_size, dim),
            params={"B": block_size, "d": dim, "s": 2},
        ),
        run_game(
            "T1-R8",
            f"{dim}-D grid: sheared s=1 hypercubes vs corridor adversary",
            graph,
            sheared_grid_blocking(dim, block_size),
            FirstBlockPolicy(),
            ModelParams(block_size, (dim + 1) * block_size),
            GridCorridorAdversary(dim, block_size, (dim + 1) * block_size),
            num_steps,
            reliability=reliability,
            lower_bound=theory.isothetic_s1_lower(block_size, dim),
            upper_bound=theory.grid_upper(block_size, dim),
            params={"B": block_size, "d": dim, "s": 1},
        ),
        run_game(
            "T1-R8",
            f"{dim}-D grid: uniform s=1 hypercubes vs corner-loop adversary",
            graph,
            uniform_grid_blocking(dim, block_size),
            FirstBlockPolicy(),
            ModelParams(block_size, (dim + 1) * block_size),
            UniformCornerAdversary(side=side, dim=dim),
            num_steps,
            reliability=reliability,
            lower_bound=None,
            upper_bound=theory.isothetic_s1_upper(block_size, dim),
            params={"B": block_size, "d": dim, "s": 1},
        ),
    ]


def redundancy_gap_rows(
    dim: int = 5, block_size: int = 1024, num_steps: int = 6_000,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """The headline comparison: at ``d > 4`` the s=2 lower bound beats
    the s=1 isothetic upper bound, so the measured s=2 speed-up should
    strictly exceed anything the s=1 uniform blocking manages against
    its corner adversary."""
    graph = InfiniteGridGraph(dim)
    side = uniform_grid_blocking(dim, block_size).tessellation.side
    return [
        run_game(
            "T1-R8-GAP",
            f"{dim}-D grid: s=2 offset blocking vs corridor adversary",
            graph,
            offset_grid_blocking(dim, block_size),
            FarthestFaultPolicy(graph),
            ModelParams(block_size, 2 * block_size),
            GridCorridorAdversary(dim, block_size, 2 * block_size),
            num_steps,
            reliability=reliability,
            lower_bound=theory.isothetic_s2_lower(block_size, dim),
            upper_bound=theory.grid_upper(block_size, dim),
            params={"B": block_size, "d": dim, "s": 2},
        ),
        run_game(
            "T1-R8-GAP",
            f"{dim}-D grid: s=1 uniform blocking vs corner-loop adversary",
            graph,
            uniform_grid_blocking(dim, block_size),
            FirstBlockPolicy(),
            ModelParams(block_size, 3 * block_size),
            UniformCornerAdversary(side=side, dim=dim),
            num_steps,
            reliability=reliability,
            lower_bound=None,
            upper_bound=theory.isothetic_s1_upper(block_size, dim),
            params={"B": block_size, "d": dim, "s": 1},
        ),
    ]


# ---------------------------------------------------------------------------
# T1-R9: diagonal grids.
# ---------------------------------------------------------------------------


def diagonal_row(
    dim: int = 2, block_size: int = 64, num_steps: int = 15_000,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """Row 9: diagonal grids. The offset s=2 blocking against the
    Lemma 25 diagonal corridor adversary: sigma in
    ``[B^(1/d)/4, 2 B^(1/d)]``."""
    graph = InfiniteDiagonalGridGraph(dim)
    return [
        run_game(
            "T1-R9",
            f"{dim}-D diagonal grid: offset s=2 blocking vs corridor adversary",
            graph,
            offset_grid_blocking(dim, block_size),
            FarthestFaultPolicy(graph),
            ModelParams(block_size, 2 * block_size),
            DiagonalCorridorAdversary(dim, block_size, 2 * block_size),
            num_steps,
            reliability=reliability,
            lower_bound=theory.diagonal_lower_s2(block_size, dim),
            upper_bound=theory.diagonal_upper(block_size, dim),
            params={"B": block_size, "d": dim, "s": 2},
        ),
    ]


# ---------------------------------------------------------------------------
# T1-R10 + K-LB + L9: general graphs.
# ---------------------------------------------------------------------------


def general_rows(
    block_size: int = 16,
    num_steps: int = 8_000,
    seed: int = 7,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """Row 10: general graphs — the Lemma 13 / Theorem 4 blockings on a
    uniform graph (random regular) against the greedy, Steiner-tour,
    and DFS-circuit adversaries, with the Theorem 2 envelope."""
    graph = random_regular_graph(512, 4, seed=seed)
    n = len(graph)
    memory = 2 * block_size
    r_minus_B = radii.min_radius(graph, block_size)
    r_plus_B = radii.max_radius(graph, block_size)
    r_minus_M = radii.min_radius(graph, memory)
    r_plus_M = radii.max_radius(graph, memory)
    upper = theory.general_upper(
        block_size, memory, n, r_plus_B, r_plus_M, r_minus_M
    )
    start = next(iter(graph.vertices()))
    results = []

    blocking13, policy13 = lemma13_blocking(graph, block_size)
    results.append(
        run_game(
            "T1-R10",
            "random 4-regular: Lemma 13 blocking (s~B) vs greedy adversary",
            graph,
            blocking13,
            policy13,
            ModelParams(block_size, memory),
            GreedyUncoveredAdversary(graph, start),
            num_steps,
            reliability=reliability,
            lower_bound=theory.general_lower_sB(r_minus_B),
            upper_bound=upper,
            params={"B": block_size, "n": n, "r-": r_minus_B, "r+": r_plus_B},
        )
    )

    blocking4, policy4 = theorem4_blocking(graph, block_size)
    results.append(
        run_game(
            "T1-R10",
            "random 4-regular: Theorem 4 blocking vs greedy adversary",
            graph,
            blocking4,
            policy4,
            ModelParams(block_size, memory),
            GreedyUncoveredAdversary(graph, start),
            num_steps,
            reliability=reliability,
            lower_bound=theory.general_lower_ballcover(r_minus_B),
            upper_bound=upper,
            params={
                "B": block_size,
                "n": n,
                "blowup_bound": theory.thm4_blowup(block_size, r_minus_B),
            },
        )
    )

    results.append(
        run_game(
            "L9",
            "random 4-regular: Lemma 13 blocking vs DFS-circuit adversary",
            graph,
            blocking13,
            policy13,
            ModelParams(block_size, memory),
            SpanningTreeCircuitAdversary(graph),
            num_steps,
            reliability=reliability,
            lower_bound=theory.general_lower_sB(r_minus_B),
            upper_bound=theory.dfs_circuit_upper(block_size, memory, n),
            params={"B": block_size, "n": n},
        )
    )

    results.append(
        run_game(
            "T1-R10",
            "random 4-regular: Lemma 13 blocking vs Steiner-tour adversary",
            graph,
            blocking13,
            policy13,
            ModelParams(block_size, memory),
            SteinerTourAdversary(graph, packing_radius=max(int(r_plus_B), 1)),
            num_steps,
            reliability=reliability,
            lower_bound=theory.general_lower_sB(r_minus_B),
            upper_bound=theory.steiner_upper(r_plus_B),
            params={"B": block_size, "n": n},
        )
    )
    return results


def geometric_rows(
    n: int = 400,
    radius: float = 0.07,
    block_size: int = 12,
    num_steps: int = 6_000,
    seed: int = 31,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """Row 10 on the other natural uniform class: random geometric
    graphs (locally grid-like). Lemma 13's guarantee and the Theorem 2
    envelope, measured."""
    graph = random_geometric_graph(n, radius, seed=seed)
    memory = 2 * block_size
    r_minus_B = radii.min_radius(graph, block_size)
    r_plus_B = radii.max_radius(graph, block_size)
    r_minus_M = radii.min_radius(graph, memory)
    r_plus_M = radii.max_radius(graph, memory)
    upper = theory.general_upper(
        block_size, memory, len(graph), r_plus_B, r_plus_M, r_minus_M
    )
    blocking, policy = lemma13_blocking(graph, block_size)
    return [
        run_game(
            "T1-R10",
            "random geometric: Lemma 13 blocking (s~B) vs greedy adversary",
            graph,
            blocking,
            policy,
            ModelParams(block_size, memory),
            GreedyUncoveredAdversary(graph, 0),
            num_steps,
            reliability=reliability,
            lower_bound=theory.general_lower_sB(r_minus_B),
            upper_bound=upper,
            params={
                "B": block_size,
                "n": len(graph),
                "r-": r_minus_B,
                "r+": r_plus_B,
            },
        )
    ]


def pathological_rows(
    memory_size: int = 16, num_steps: int = 2_000,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """The Section 2 counterexamples: ``K_{M+1}`` pins sigma <= 1 and
    the (planar) M-star pins sigma <= 2, regardless of the blocking."""
    block_size = memory_size // 2
    clique = complete_graph(memory_size + 1)
    cb, cp = lemma13_blocking(clique, block_size)
    star = star_graph(4 * memory_size)
    sb, sp = lemma13_blocking(star, block_size)
    return [
        run_game(
            "K-LB",
            "K_{M+1}: any blocking vs greedy adversary (sigma <= 1)",
            clique,
            cb,
            cp,
            ModelParams(block_size, memory_size),
            GreedyUncoveredAdversary(clique, 0),
            num_steps,
            reliability=reliability,
            upper_bound=1.0,
            params={"M": memory_size, "n": memory_size + 1},
        ),
        run_game(
            "K-LB",
            "M-star: any blocking vs greedy adversary (sigma <= 2)",
            star,
            sb,
            sp,
            ModelParams(block_size, memory_size),
            GreedyUncoveredAdversary(star, 0),
            num_steps,
            reliability=reliability,
            upper_bound=2.0,
            params={"M": memory_size, "n": 4 * memory_size + 1},
        ),
    ]


def nonuniform_row(
    block_size: int = 16, num_steps: int = 4_000,
    reliability: ReliabilityConfig | None = None,
) -> list[ExperimentResult]:
    """A deliberately non-uniform graph (lollipop): the Lemma 13
    guarantee still holds at ``r^-(B)`` but the measured sigma on a
    random walk is far higher — the r^+/r^- gap in action."""
    graph = lollipop_graph(64, 256)
    r_minus = radii.min_radius(graph, block_size)
    blocking, policy = lemma13_blocking(graph, block_size)
    model = ModelParams(block_size, 2 * block_size)
    return [
        run_game(
            "T1-R10",
            "lollipop: Lemma 13 blocking vs greedy adversary (non-uniform)",
            graph,
            blocking,
            policy,
            model,
            GreedyUncoveredAdversary(graph, 0),
            num_steps,
            reliability=reliability,
            lower_bound=theory.general_lower_sB(r_minus),
            params={"B": block_size, "n": len(graph), "r-": r_minus},
        ),
        run_game(
            "T1-R10",
            "lollipop: Lemma 13 blocking vs random walk (benign)",
            graph,
            blocking,
            policy,
            model,
            RandomWalkAdversary(graph, 0, seed=3),
            num_steps,
            reliability=reliability,
            lower_bound=theory.general_lower_sB(r_minus),
            params={"B": block_size, "n": len(graph)},
        ),
    ]


# ---------------------------------------------------------------------------
# EX1 / EX2: the closed-form radius examples.
# ---------------------------------------------------------------------------


def example1_checks(
    arity: int = 2, height: int = 14, ks: Sequence[int] = (7, 15, 31, 63, 127)
) -> list[CheckResult]:
    """Example 1: measured k-radii of complete d-ary tree vertices vs
    the paper's closed forms (continuous approximations — allow +-2)."""
    tree = CompleteTree(arity, height)
    deep_internal = tree.ancestor_at_depth(next(iter(tree.leaves())), height // 2)
    leaf = next(iter(tree.leaves()))
    checks = []
    for k in ks:
        checks.append(
            CheckResult(
                "EX1",
                f"tree root radius, k={k}",
                expected=theory.tree_radius_root(k, arity),
                measured=radii.vertex_radius(tree, tree.root, k),
                tolerance=2.0,
            )
        )
        checks.append(
            CheckResult(
                "EX1",
                f"tree internal radius, k={k}",
                expected=theory.tree_radius_internal(k, arity),
                measured=radii.vertex_radius(tree, deep_internal, k),
                tolerance=2.0,
            )
        )
        checks.append(
            CheckResult(
                "EX1",
                f"tree leaf radius, k={k}",
                expected=theory.tree_radius_leaf(k, arity),
                measured=radii.vertex_radius(tree, leaf, k),
                tolerance=2.0,
            )
        )
    return checks


def example2_checks(
    dims: Sequence[int] = (1, 2, 3), rs: Sequence[int] = (1, 2, 4, 8)
) -> list[CheckResult]:
    """Example 2: measured grid ball volumes vs the exact recurrence,
    and exact grid radii vs the paper's asymptotic coefficient."""
    checks = []
    for dim in dims:
        extent = 4 * max(rs) + 1
        graph = GridGraph((extent,) * dim)
        center = graph.center()
        for r in rs:
            checks.append(
                CheckResult(
                    "EX2",
                    f"grid ball volume, d={dim}, r={r}",
                    expected=float(theory.grid_ball_volume_exact(dim, r)),
                    measured=float(ball_volume(graph, center, r)),
                    tolerance=0.0,
                )
            )
        # Radii: exact integer vs the leading-term inversion.
        for k in (10, 100, 1000):
            checks.append(
                CheckResult(
                    "EX2",
                    f"grid radius, d={dim}, k={k}",
                    expected=theory.grid_radius_leading(dim, k),
                    measured=float(theory.grid_radius_exact(dim, k)),
                    tolerance=max(2.0, 0.5 * theory.grid_radius_leading(dim, k)),
                )
            )
    return checks


# ---------------------------------------------------------------------------
# BC: the Section 4.2 ball-cover cardinality table.
# ---------------------------------------------------------------------------


def ballcover_checks(seed: int = 11) -> list[CheckResult]:
    """The BALL COVER constructions' cardinality guarantees on a few
    graph families. Measured cardinality must be <= the bound (encoded
    as expected=bound, measured<=bound => tolerance test on the
    difference)."""
    graphs = {
        "path(60)": path_graph(60),
        "torus(8x8)": torus_graph((8, 8)),
        "random-regular(64,3)": random_regular_graph(64, 3, seed=seed),
    }
    checks = []
    for name, graph in graphs.items():
        n = len(graph)
        cover1 = vertex_cover_2approx(graph)
        assert is_ball_cover(graph, cover1, 1)
        checks.append(
            CheckResult(
                "BC",
                f"{name}: BALL COVER(1) via vertex cover, |V'| <= n",
                expected=float(n),
                measured=float(len(cover1)),
                tolerance=float(n),  # any size <= n passes
            )
        )
        cover2 = ball_cover_matching(graph)
        assert is_ball_cover(graph, cover2, 2)
        checks.append(
            CheckResult(
                "BC",
                f"{name}: BALL COVER(2) via matching, |V'| <= n/2",
                expected=float(n // 2),
                measured=float(len(cover2)),
                tolerance=float(n // 2),
            )
        )
        for r in (3, 6):
            cover = ball_cover_corollary2(graph, r)
            assert is_ball_cover(graph, cover, r)
            bound = theory.ballcover_cardinality_bound(n, r)
            checks.append(
                CheckResult(
                    "BC",
                    f"{name}: BALL COVER({r}) via Corollary 2, |V'| <= {bound:.1f}",
                    expected=bound,
                    measured=float(len(cover)),
                    tolerance=bound,
                )
            )
            packing_cover = ball_cover_packing(graph, r)
            assert is_ball_cover(graph, packing_cover, r)
            k_min = radii.min_ball_volume(graph, r // 2)
            bound5 = n / k_min
            checks.append(
                CheckResult(
                    "BC",
                    f"{name}: BALL COVER({r}) via Theorem 5, |V'| <= {bound5:.1f}",
                    expected=bound5,
                    measured=float(len(packing_cover)),
                    tolerance=bound5,
                )
            )
    return checks


# ---------------------------------------------------------------------------
# Everything.
# ---------------------------------------------------------------------------

# The named cells of the sweep, in report order. Registries of plain
# module-level functions (not lambdas) keep every cell *picklable*, so
# the parallel runner (repro.experiments.parallel) can ship the same
# cells to worker processes that run_all executes inline.
_GAME_CELL_FUNCS: dict[str, Callable[..., list[ExperimentResult]]] = {
    "tree": tree_row,
    "grid1d": grid1d_row,
    "grid1d-finite": grid1d_finite_row,
    "grid2d": grid2d_rows,
    "gridd": gridd_rows,
    "gridd-reduced": gridd_reduced_rows,
    "isothetic": isothetic_rows,
    "redundancy-gap": redundancy_gap_rows,
    "diagonal": diagonal_row,
    "general": general_rows,
    "geometric": geometric_rows,
    "pathological": pathological_rows,
    "nonuniform": nonuniform_row,
}

_CHECK_CELL_FUNCS: dict[str, Callable[..., list[CheckResult]]] = {
    "example1": example1_checks,
    "example2": example2_checks,
    "ballcover": ballcover_checks,
}

# Cells whose traces are capped below the full-sweep step count.
_STEP_CAPS: dict[str, int] = {
    "grid1d-finite": 6_000,
    "gridd-reduced": 6_000,
    "redundancy-gap": 6_000,
    "general": 8_000,
    "geometric": 6_000,
    "pathological": 2_000,
    "nonuniform": 4_000,
}


@dataclass(frozen=True)
class CellSpec:
    """One runnable cell of the Table 1 sweep, as picklable data.

    ``func`` names an entry in the cell registries (never a callable),
    and ``kwargs`` holds only picklable values, so a spec can cross a
    process boundary and produce the same cell the serial path runs.
    """

    name: str
    kind: str  # "game" or "check"
    func: str
    kwargs: dict = dataclasses.field(default_factory=dict)


def cell_specs(
    quick: bool = False,
    reliability: ReliabilityConfig | None = None,
    names: Sequence[str] | None = None,
) -> list[CellSpec]:
    """The sweep's cells in report order (the serial and parallel
    runners both execute exactly this list).

    ``names`` restricts to a subset of cells, preserving order —
    unknown names raise :class:`ReproError`.
    """
    steps = 2_000 if quick else 15_000
    specs: list[CellSpec] = []
    for name in _GAME_CELL_FUNCS:
        num_steps = min(steps, _STEP_CAPS.get(name, steps))
        specs.append(
            CellSpec(
                name,
                "game",
                name,
                {"num_steps": num_steps, "reliability": reliability},
            )
        )
    for name in _CHECK_CELL_FUNCS:
        specs.append(CellSpec(name, "check", name, {}))
    if names is not None:
        known = {spec.name for spec in specs}
        unknown = [n for n in names if n not in known]
        if unknown:
            raise ReproError(
                f"unknown sweep cell(s) {unknown!r}; known: {sorted(known)}"
            )
        wanted = set(names)
        specs = [spec for spec in specs if spec.name in wanted]
    return specs


def run_cell(spec: CellSpec) -> list[ExperimentResult] | list[CheckResult]:
    """Execute one cell. This is the single execution path shared by
    the serial sweep and the parallel runner's workers.

    A :class:`ReproError` escaping a *game* cell (e.g. a construction
    that cannot survive the configured fault injection) degrades into a
    single errored :class:`ExperimentResult` instead of killing the
    sweep — sibling cells are unaffected, and serial and parallel runs
    degrade identically. Check cells have no error column, so their
    failures propagate in both.
    """
    if spec.kind == "game":
        func = _GAME_CELL_FUNCS[spec.func]
    elif spec.kind == "check":
        func = _CHECK_CELL_FUNCS[spec.func]
    else:
        raise ReproError(f"unknown cell kind {spec.kind!r}")
    try:
        return func(**spec.kwargs)
    except ReproError as exc:
        if spec.kind != "game":
            raise
        return [
            ExperimentResult(
                experiment=f"cell:{spec.name}",
                description=f"cell {spec.name!r} failed to run",
                error=f"{type(exc).__name__}: {exc}",
            )
        ]


def run_all(
    quick: bool = False,
    reliability: ReliabilityConfig | None = None,
    profiler: "PhaseProfiler | None" = None,
    progress: "Callable[[int, int, str], None] | None" = None,
) -> tuple[list[ExperimentResult], list[CheckResult]]:
    """Run the whole Table 1 sweep. ``quick`` shrinks the traces for
    smoke runs (used by tests). ``reliability`` runs every game against
    the configured unreliable disk; per-run failures become degraded
    cells (``ExperimentResult.error``) and the sweep still completes.

    ``profiler`` times each named cell under the phase
    ``table1.<cell>`` (see :class:`repro.obs.PhaseProfiler`).
    ``progress`` is called as ``progress(done, total, label)`` after
    every cell — :class:`repro.obs.SweepProgress` prints these with
    elapsed time and an ETA.

    For multi-process execution of the same cells see
    :func:`repro.experiments.parallel.run_all_parallel`.
    """
    specs = cell_specs(quick=quick, reliability=reliability)
    total = len(specs)
    games: list[ExperimentResult] = []
    checks: list[CheckResult] = []
    for done, spec in enumerate(specs, start=1):
        if profiler is not None:
            with profiler.phase(f"table1.{spec.name}"):
                out = run_cell(spec)
        else:
            out = run_cell(spec)
        if spec.kind == "game":
            games += out
        else:
            checks += out
        if progress is not None:
            progress(done, total, spec.name)
    return games, checks

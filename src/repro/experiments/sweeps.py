"""Parameter sweeps: the series a plotted version of Table 1 would show.

The paper has no measurement figures (it is pure theory), but each of
its laws is a curve — ``sigma ~ lg B`` for trees, ``sigma ~ B^(1/d)``
for grids, the ``d/4`` redundancy-gap line. These sweeps produce those
series as data, and the benchmarks assert their *shape* (monotonicity
and growth rate), which is what "reproducing the figure" means for a
bounds paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import map_rows
from repro.experiments.table1 import (
    grid1d_row,
    grid2d_rows,
    gridd_rows,
    isothetic_rows,
    tree_row,
)


@dataclass
class SweepSeries:
    """One measured curve with its predicted envelope."""

    name: str
    parameter: str
    values: list[float] = field(default_factory=list)
    sigmas: list[float] = field(default_factory=list)
    lower_bounds: list[float] = field(default_factory=list)
    upper_bounds: list[float] = field(default_factory=list)

    def append(self, value: float, result: ExperimentResult) -> None:
        self.values.append(value)
        self.sigmas.append(result.sigma)
        self.lower_bounds.append(
            result.lower_bound if result.lower_bound is not None else math.nan
        )
        self.upper_bounds.append(
            result.upper_bound if result.upper_bound is not None else math.nan
        )

    @property
    def is_monotone_increasing(self) -> bool:
        return all(a <= b + 1e-9 for a, b in zip(self.sigmas, self.sigmas[1:]))

    def growth_factor(self) -> float:
        """Last sigma over first sigma — the measured growth across the
        sweep."""
        if not self.sigmas or self.sigmas[0] == 0:
            return math.nan
        return self.sigmas[-1] / self.sigmas[0]

    def rows(self) -> list[tuple[float, float, float, float]]:
        return list(
            zip(self.values, self.sigmas, self.lower_bounds, self.upper_bounds)
        )


def tree_sigma_vs_lgB(
    block_sizes: Sequence[int] = (63, 255, 1023, 4095),
    arity: int = 2,
    num_steps: int = 6_000,
    jobs: int = 1,
) -> SweepSeries:
    """sigma of the Lemma 17 blocking vs lg B — the tree law.

    ``jobs > 1`` shards the grid points over worker processes; the
    series is identical to the serial one (see
    :func:`repro.experiments.parallel.map_rows`).
    """
    series = SweepSeries("tree Lemma 17 blocking", "lg B")
    grid = []
    for B in block_sizes:
        levels = int(math.log2(B + 1))
        height = max(30 * levels, 120)  # tall enough for Theorem 7's bound
        grid.append(
            dict(block_size=B, arity=arity, height=height, num_steps=num_steps)
        )
    for B, rows in zip(block_sizes, map_rows(tree_row, grid, jobs=jobs)):
        series.append(math.log2(B), rows[0])
    return series


def grid_sigma_vs_B(
    dim: int,
    block_sizes: Sequence[int] = (16, 64, 256),
    num_steps: int = 8_000,
    jobs: int = 1,
) -> SweepSeries:
    """sigma of the s=2 offset blocking vs B^(1/d) — the grid law."""
    series = SweepSeries(f"{dim}-D grid offset s=2 blocking", "B^(1/d)")
    if dim == 1:
        func, pick = grid1d_row, lambda rows: next(
            r for r in rows if r.params["s"] == 1
        )
        grid = [dict(block_size=B, num_steps=num_steps) for B in block_sizes]
    elif dim == 2:
        func, pick = grid2d_rows, lambda rows: next(
            r for r in rows if r.params["s"] == 2
        )
        grid = [dict(block_size=B, num_steps=num_steps) for B in block_sizes]
    else:
        func, pick = gridd_rows, lambda rows: rows[0]
        grid = [
            dict(dim=dim, block_size=B, num_steps=num_steps) for B in block_sizes
        ]
    for B, rows in zip(block_sizes, map_rows(func, grid, jobs=jobs)):
        series.append(B ** (1.0 / dim), pick(rows))
    return series


def isothetic_gap_vs_dimension(
    dims: Sequence[int] = (2, 3),
    num_steps: int = 6_000,
) -> dict[int, tuple[float, float]]:
    """Measured (s=2 sigma, s=1-uniform sigma) per dimension — the
    empirical side of the redundancy-gap curve. Block sizes chosen so
    the tile side stays 8."""
    out: dict[int, tuple[float, float]] = {}
    for d in dims:
        rows = isothetic_rows(dim=d, block_size=8 ** d, num_steps=num_steps)
        s2 = next(r for r in rows if r.params["s"] == 2)
        s1_uniform = next(
            r for r in rows if "uniform" in r.description
        )
        out[d] = (s2.sigma, s1_uniform.sigma)
    return out


def _failure_rate_cell(
    s: int,
    rate: float,
    block_size: int,
    num_steps: int,
    seed: int,
    retry_attempts: int,
) -> ExperimentResult:
    """One (blow-up, failure-rate) point of the reliability sweep.

    Module-level — and rebuilding every construction from its
    parameters — so :func:`repro.experiments.parallel.map_rows` can
    ship it to a worker process.
    """
    from repro.adversaries import RandomWalkAdversary
    from repro.blockings import (
        FarthestFaultPolicy,
        offset_grid_blocking,
        uniform_grid_blocking,
    )
    from repro.core.model import ModelParams
    from repro.core.policies import FirstBlockPolicy
    from repro.experiments.harness import run_game
    from repro.graphs import InfiniteGridGraph
    from repro.reliability import (
        ExponentialBackoff,
        ProbabilisticFaults,
        ReliabilityConfig,
    )

    graph = InfiniteGridGraph(2)
    if s == 1:
        blocking = uniform_grid_blocking(2, block_size)
        policy = FirstBlockPolicy()
    else:
        blocking = offset_grid_blocking(2, block_size, copies=s)
        policy = FarthestFaultPolicy(graph)
    reliability = ReliabilityConfig(
        injector=ProbabilisticFaults(
            transient_rate=0.75 * rate,
            loss_rate=0.25 * rate,
            seed=seed,
        ),
        retry=ExponentialBackoff(
            max_attempts=retry_attempts, jitter=0.5, seed=seed
        ),
        step_budget=20 * num_steps,
    )
    return run_game(
        "REL",
        f"2-D grid s={s} blocking, failure rate {rate:.2f}",
        graph,
        blocking,
        policy,
        ModelParams(block_size, 4 * block_size),
        RandomWalkAdversary(graph, (0, 0), seed=seed),
        num_steps,
        params={"B": block_size, "s": s, "failure_rate": rate},
        reliability=reliability,
    )


def sigma_vs_failure_rate(
    rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    s_values: Sequence[int] = (1, 2, 4),
    block_size: int = 64,
    num_steps: int = 4_000,
    seed: int = 17,
    retry_attempts: int = 3,
    jobs: int = 1,
) -> dict[int, SweepSeries]:
    """The reliability axis the paper never measured: blocking speed-up
    under an unreliable disk, per storage blow-up.

    For each ``s`` in ``s_values`` the 2-D grid blocking with ``s``
    mutually offset tessellations plays a seeded random walk while
    every block read fails transiently *or is permanently lost* at the
    given rate (split 3:1 transient:loss). Lost blocks exercise replica
    fallback: with ``s = 1`` a lost block on the walk kills the run (a
    degraded cell, ``sigma = nan``), while ``s >= 2`` keeps searching
    from the surviving copies — redundancy bought by the blow-up.

    Returns one series per ``s``, indexed by failure rate. ``jobs > 1``
    shards the (s, rate) grid over worker processes; every cell is
    seeded independently, so the series are identical to a serial run.
    """
    grid = [
        dict(
            s=s,
            rate=rate,
            block_size=block_size,
            num_steps=num_steps,
            seed=seed,
            retry_attempts=retry_attempts,
        )
        for s in s_values
        for rate in rates
    ]
    results = map_rows(_failure_rate_cell, grid, jobs=jobs)
    out: dict[int, SweepSeries] = {}
    index = 0
    for s in s_values:
        series = SweepSeries(
            f"2-D grid s={s} blocking vs failure rate", "failure rate"
        )
        for rate in rates:
            series.append(rate, results[index])
            index += 1
        out[s] = series
    return out


def memory_tradeoff_sweep(
    ratios: Sequence[int] = (1, 2, 4, 8),
    block_size: int = 64,
    num_steps: int = 6_000,
) -> SweepSeries:
    """Open question 7: does more memory (M/B) buy speed-up?

    Measures the 2-D s=2 blocking under the greedy adversary at
    M = ratio * B. The paper's guarantees only need M = 2B; the sweep
    shows what the extra capacity is worth against a hostile walk.
    """
    from repro.adversaries import GreedyUncoveredAdversary
    from repro.blockings import FarthestFaultPolicy, offset_grid_blocking
    from repro.core.model import ModelParams
    from repro.experiments.harness import run_game
    from repro.graphs import InfiniteGridGraph

    graph = InfiniteGridGraph(2)
    series = SweepSeries("2-D offset s=2 vs greedy, growing memory", "M/B")
    for ratio in ratios:
        result = run_game(
            "OQ7",
            f"2-D grid s=2, M = {ratio}B, greedy adversary",
            graph,
            offset_grid_blocking(2, block_size),
            FarthestFaultPolicy(graph),
            ModelParams(block_size, ratio * block_size),
            GreedyUncoveredAdversary(graph, (0, 0), max_radius=40),
            num_steps,
        )
        series.append(float(ratio), result)
    return series

"""Closed-form theory: every bound in Table 1, plus Examples 1-2.

These are the paper's formulas transcribed directly, used by the
benchmark harness to draw the upper/lower envelopes the measured
speed-ups must respect. Formulas are continuous (the paper omits
floors); the exact integer counterparts, where the paper's examples
admit them, are provided alongside (``grid_ball_volume_exact``,
``grid_radius_exact``).

Naming convention: ``*_upper`` caps any blocking (adversary side);
``*_lower`` is guaranteed by the matching construction (algorithm
side); trailing ``_s1`` / ``_s2`` / ``_sB`` tags the storage blow-up
the bound assumes.
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError

E = math.e


def lg(x: float) -> float:
    """Base-2 logarithm (the paper's ``lg``)."""
    return math.log2(x)


def smallest_prime_at_least(n: int) -> int:
    """The smallest prime ``p >= n`` (Chebyshev/Bertrand: ``p < 2n``).

    Used by Lemma 28's sheared tessellation.
    """
    if n <= 2:
        return 2
    candidate = n
    while True:
        if all(candidate % q for q in range(2, int(math.isqrt(candidate)) + 1)):
            return candidate
        candidate += 1


# ---------------------------------------------------------------------------
# Example 1: k-radii of complete d-ary trees.
# ---------------------------------------------------------------------------


def tree_radius_root(k: float, d: int) -> float:
    """``r_root(k)`` for a complete d-ary tree (Example 1)."""
    _check_tree_args(k, d)
    return lg(k * (d - 1) + 1) / lg(d) - 1


def tree_radius_internal(k: float, d: int) -> float:
    """``r_int(k)``: the radius of a deep internal vertex (Example 1).

    This is the graph's minimum k-radius, ``r^-(k)``.
    """
    _check_tree_args(k, d)
    return (lg(k * (d - 1) + 2) - lg(d + 1)) / lg(d)


def tree_radius_leaf(k: float, d: int) -> float:
    """``r_leaf(k)``: the radius of a leaf (Example 1).

    This is the graph's maximum k-radius, ``r^+(k)``.
    """
    _check_tree_args(k, d)
    first = 2 * math.ceil((lg(k * (d - 1) + 2) - 1) / lg(d) - 0.5)
    second = 2 * math.ceil((lg((k * (d + 1) + 2) / d - 1) - 1) / lg(d)) + 1
    return min(first, second)


def tree_leaf_ball_volume(r: int, d: int) -> int:
    """Vertices within distance ``r`` of a leaf in a tall complete
    d-ary tree: ``(d^(floor(r/2)+1) + d^(ceil(r/2)) - 2) / (d - 1)``."""
    if r < 0:
        raise AnalysisError(f"r must be >= 0, got {r}")
    if d < 2:
        raise AnalysisError(f"d must be >= 2, got {d}")
    return (d ** (r // 2 + 1) + d ** ((r + 1) // 2) - 2) // (d - 1)


def _check_tree_args(k: float, d: int) -> None:
    if k < 1:
        raise AnalysisError(f"k must be >= 1, got {k}")
    if d < 2:
        raise AnalysisError(f"d must be >= 2, got {d}")


# ---------------------------------------------------------------------------
# Example 2: ball volumes and radii of d-dimensional grid graphs.
# ---------------------------------------------------------------------------


def grid_ball_volume_exact(d: int, r: int) -> int:
    """Exact ``k_d(r)``: lattice points of ``Z^d`` within L1-distance
    ``r`` of a point, via the paper's recurrence
    ``k_d(r) = k_{d-1}(r) + 2 * sum_{r' < r} k_{d-1}(r')``."""
    if d < 1:
        raise AnalysisError(f"d must be >= 1, got {d}")
    if r < 0:
        raise AnalysisError(f"r must be >= 0, got {r}")
    # k_1(r) = 2r + 1; build up dimension by dimension.
    volumes = [2 * rr + 1 for rr in range(r + 1)]
    for _ in range(d - 1):
        prefix = 0
        nxt = []
        for rr in range(r + 1):
            nxt.append(volumes[rr] + 2 * prefix)
            prefix += volumes[rr]
        volumes = nxt
    return volumes[r]


def grid_ball_volume_leading(d: int, r: float) -> float:
    """The leading term ``(2^d / d!) * r^d`` of ``k_d(r)``."""
    if d < 1:
        raise AnalysisError(f"d must be >= 1, got {d}")
    return (2.0 ** d) / math.factorial(d) * float(r) ** d


def grid_radius_exact(d: int, k: int) -> int:
    """Exact integer ``r_d(k)``: the k-radius of any vertex of the
    infinite d-dimensional grid — the smallest ``r`` with
    ``k_d(r) >= k + 1`` (the nearest excluded vertex of the k nearest
    lies at that distance)."""
    if k < 1:
        raise AnalysisError(f"k must be >= 1, got {k}")
    r = 0
    while grid_ball_volume_exact(d, r) < k + 1:
        r += 1
    return r


def grid_radius_leading(d: int, k: float) -> float:
    """The paper's leading term ``(1/2) (d! k)^(1/d)``."""
    if d < 1:
        raise AnalysisError(f"d must be >= 1, got {d}")
    return 0.5 * (math.factorial(d) * k) ** (1.0 / d)


def grid_radius_stirling(d: int, k: float) -> float:
    """Stirling form ``(1/2e) (2 pi d)^(1/2d) d k^(1/d)``."""
    if d < 1:
        raise AnalysisError(f"d must be >= 1, got {d}")
    return (1 / (2 * E)) * (2 * math.pi * d) ** (1 / (2 * d)) * d * k ** (1 / d)


def grid_radius_asymptotic(d: int, k: float) -> float:
    """The simplified asymptotic ``(1/2e) d k^(1/d)`` (equation (1))."""
    if d < 1:
        raise AnalysisError(f"d must be >= 1, got {d}")
    return d * k ** (1 / d) / (2 * E)


# ---------------------------------------------------------------------------
# Table 1: complete d-ary trees (Section 5).
# ---------------------------------------------------------------------------


def tree_upper(B: int, d: int) -> float:
    """``sigma <= 2 lg B / lg d`` (Corollary 3)."""
    return 2 * lg(B) / lg(d)


def tree_upper_finite(B: int, d: int, M: int, h: int) -> float:
    """Theorem 7's finite-height bound ``2h / (h/log_d B - log_d M)``.

    Requires the denominator to be positive (tall enough trees).
    """
    denom = h / math.log(B, d) - math.log(M, d)
    if denom <= 0:
        raise AnalysisError(
            f"tree too short for the Theorem 7 bound: h={h}, B={B}, M={M}"
        )
    return 2 * h / denom


def tree_lower_s2(B: int, d: int) -> float:
    """``sigma >= lg B / (2 lg d)`` with ``s = 2`` (Lemma 17)."""
    return lg(B) / (2 * lg(d))


# ---------------------------------------------------------------------------
# Table 1: grid graphs (Section 6).
# ---------------------------------------------------------------------------


def grid_upper(B: int, d: int) -> float:
    """``sigma <= d B^(1/d)`` (Lemma 24; Lemma 18 is ``d = 1``,
    Lemma 21 is ``d = 2``)."""
    return d * B ** (1 / d)


def grid1d_upper_finite(B: int, M: int, n: int) -> float:
    """Lemma 19: ``rho/(rho-1) B - B/((rho-1)M)`` for an n-vertex path."""
    rho = n / M
    if rho <= 1:
        raise AnalysisError(f"need n > M, got n={n}, M={M}")
    return rho / (rho - 1) * B - B / ((rho - 1) * M)


def grid1d_lower_s1(B: int) -> float:
    """``sigma >= B`` with ``s = 1, M >= 2B`` (Lemma 20)."""
    return float(B)


def grid1d_lower_s2(B: int) -> float:
    """``sigma >= B/2`` with ``s = 2, M >= B`` (Section 6.1.2 remark)."""
    return B / 2


def grid2d_lower_s1(B: int) -> float:
    """``sigma >= sqrt(B)/6`` with ``s = 1, M >= 3B`` (Lemma 23)."""
    return math.sqrt(B) / 6


def grid2d_lower_s2(B: int) -> float:
    """``sigma >= sqrt(B)/4`` with ``s = 2, M >= 2B`` (Lemma 22)."""
    return math.sqrt(B) / 4


def grid_lower_sB(B: int, d: int) -> float:
    """``sigma >= (1/2e) d B^(1/d)`` with ``s = B`` (Lemma 27)."""
    return grid_radius_asymptotic(d, B)


def grid_lower_reduced(B: int, d: int) -> float:
    """``sigma >= (1/4e) d B^(1/d)`` with the reduced blow-up of
    Theorems 4/6 (half the Lemma 27 speed-up)."""
    return grid_radius_asymptotic(d, B) / 2


def grid_reduced_blowup(B: int, d: int) -> float:
    """The blow-up ``min{(6e/d) B^((d-1)/d), 4^d}`` (Section 6.3.2)."""
    return min(6 * E / d * B ** ((d - 1) / d), 4.0 ** d)


def isothetic_s2_lower(B: int, d: int) -> float:
    """``sigma >= B^(1/d)/4`` with ``s = 2`` offset hypercubes (L26)."""
    return B ** (1 / d) / 4


def isothetic_s1_upper(B: int, d: int) -> float:
    """``sigma <= (B^(1/d) + d)/(d + 1)`` for any ``s = 1`` isothetic
    hypercube tessellation blocking (Lemma 31)."""
    return (B ** (1 / d) + d) / (d + 1)


def isothetic_s1_upper_table(B: int, d: int) -> float:
    """Table 1's simplified form of the Lemma 31 cap:
    ``sigma <= (1/d) B^(1/d)``."""
    return B ** (1 / d) / d


def isothetic_s1_lower(B: int, d: int) -> float:
    """``sigma >= B^(1/d)/(2 d^2)`` with the sheared ``s = 1``
    tessellation (Lemma 28)."""
    return B ** (1 / d) / (2 * d * d)


def diagonal_upper(B: int, d: int) -> float:
    """``sigma <= 2 B^(1/d)`` on diagonal grids (Lemma 25)."""
    return 2 * B ** (1 / d)


def diagonal_lower_s2(B: int, d: int) -> float:
    """``sigma >= B^(1/d)/4`` with ``s = 2`` on diagonal grids (L26)."""
    return B ** (1 / d) / 4


def redundancy_gap(B: int, d: int) -> float:
    """The headline ratio: the ``s = 2`` isothetic lower bound over
    Table 1's ``s = 1`` isothetic upper bound, ``d/4`` — exceeds 1
    exactly when ``d > 4`` (the paper's Conclusions: "the lower bound
    for s = 2 is larger than the upper bound for s = 1 as long as
    d > 4"), proving redundancy buys more than a constant factor."""
    return isothetic_s2_lower(B, d) / isothetic_s1_upper_table(B, d)


# ---------------------------------------------------------------------------
# Table 1: general graphs (Section 4).
# ---------------------------------------------------------------------------


def general_upper(
    B: int,
    M: int,
    n: int,
    r_plus_B: float,
    r_plus_M: float,
    r_minus_M: float,
) -> float:
    """Theorem 2: the minimum of the five general upper bounds."""
    rho = n / M
    if rho <= 1:
        raise AnalysisError(f"need n > M, got n={n}, M={M}")
    return min(
        r_plus_M,
        2 * r_minus_M,
        2 * rho / (rho - 1) * B,
        (2 * M / B + 3) * r_plus_B,
        8 * r_plus_B,
    )


def dfs_circuit_upper(B: int, M: int, n: int) -> float:
    """Lemma 9: ``sigma <= 2 rho/(rho-1) B``."""
    rho = n / M
    if rho <= 1:
        raise AnalysisError(f"need n > M, got n={n}, M={M}")
    return 2 * rho / (rho - 1) * B


def steiner_upper(r_plus_B: float) -> float:
    """Lemma 12: ``sigma <= 8 r^+(B)``."""
    return 8 * r_plus_B


def lemma10_upper(B: int, M: int, r_plus_B: float) -> float:
    """Lemma 10: ``sigma <= (2 M/B + 3) r^+(B)``."""
    return (2 * M / B + 3) * r_plus_B


def general_lower_sB(r_minus_B: float) -> float:
    """Lemma 13: ``sigma >= r^-(B)`` with ``s = B``."""
    return r_minus_B


def general_lower_ballcover(r_minus_B: float) -> float:
    """Theorems 4/6: ``sigma >= ceil(r^-(B)/2)`` with reduced blow-up."""
    return math.ceil(r_minus_B / 2)


def thm4_blowup(B: int, r_minus_B: float) -> float:
    """Theorem 4's asymptotic blow-up ``s = 3B / r^-(B)``."""
    if r_minus_B <= 0:
        raise AnalysisError("r^-(B) must be positive")
    return 3 * B / r_minus_B


def thm6_blowup(B: int, k_minus_quarter_radius: int) -> float:
    """Theorem 6's blow-up ``s <= B / k^-(floor(r^-(B)/4))``."""
    if k_minus_quarter_radius < 1:
        raise AnalysisError("ball volume must be >= 1")
    return B / k_minus_quarter_radius


def ballcover_cardinality_bound(n: int, r: int) -> float:
    """Corollary 2: ``|V'| <= n / (2 floor(r/3) + 1)``."""
    if r < 0:
        raise AnalysisError(f"r must be >= 0, got {r}")
    return n / (2 * (r // 3) + 1)


# ---------------------------------------------------------------------------
# Table 1 metadata: the M/B column.
# ---------------------------------------------------------------------------

#: Minimum memory (in blocks, the paper's M/B column of Table 1) each
#: construction needs for its guarantee. Keys name the constructions as
#: the library exposes them.
TABLE1_MEMORY_REQUIREMENTS: dict[str, int] = {
    "tree_overlapped_s2": 1,          # Lemma 17: "M/B >= 1"
    "grid1d_contiguous_s1": 2,        # Lemma 20
    "grid1d_offset_s2": 1,            # Section 6.1.2 remark
    "grid2d_brick_s1": 3,             # Lemma 23
    "grid2d_offset_s2": 2,            # Lemma 22
    "gridd_ball_sB": 1,               # Lemma 13/27
    "gridd_reduced_thm4": 1,          # Theorem 4
    "gridd_reduced_thm6": 1,          # Theorem 6
    "isothetic_offset_s2": 2,         # Lemma 26
    "isothetic_sheared_s1": None,     # Lemma 28: M/B >= d + 1 (dimension-dependent)
    "diagonal_offset_s2": 2,          # Lemma 26 (diagonal)
    "general_lemma13_sB": 1,          # Lemma 13
}


def sheared_memory_blocks(d: int) -> int:
    """Lemma 28's requirement: ``M >= (d + 1) B``."""
    if d < 1:
        raise AnalysisError(f"d must be >= 1, got {d}")
    return d + 1

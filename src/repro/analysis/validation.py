"""Blocking validators.

A blocking must cover its graph (assumption 4 is only meaningful if
every vertex can be faulted in), respect the block capacity, and report
an honest storage blow-up. These checks are construction-time cheap
for explicit blockings and window-sampled for implicit ones; library
users should run them once when wiring up a new construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.blocking import Blocking, ExplicitBlocking
from repro.graphs.base import FiniteGraph
from repro.typing import Vertex


@dataclass
class BlockingReport:
    """Outcome of validating a blocking against a vertex universe."""

    vertices_checked: int = 0
    uncovered: list[Vertex] = field(default_factory=list)
    oversized_blocks: list = field(default_factory=list)
    min_copies: int = 0
    max_copies: int = 0
    mean_copies: float = 0.0
    declared_blowup: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.uncovered and not self.oversized_blocks

    def summary(self) -> str:
        status = "OK" if self.ok else "INVALID"
        return (
            f"{status}: {self.vertices_checked} vertices, "
            f"{len(self.uncovered)} uncovered, "
            f"{len(self.oversized_blocks)} oversized blocks, "
            f"copies {self.min_copies}..{self.max_copies} "
            f"(mean {self.mean_copies:.2f}, declared s={self.declared_blowup:.2f})"
        )


def validate_blocking(
    blocking: Blocking, vertices: Iterable[Vertex]
) -> BlockingReport:
    """Check coverage, capacity, and replication over ``vertices``.

    Works for explicit and implicit blockings alike: for implicit ones
    pass a representative window of coordinates. Every block touched by
    a checked vertex is capacity-verified.
    """
    report = BlockingReport(declared_blowup=blocking.storage_blowup())
    copies_total = 0
    copies_min = None
    copies_max = 0
    seen_blocks = set()
    for vertex in vertices:
        report.vertices_checked += 1
        candidates = blocking.blocks_for(vertex)
        count = len(candidates)
        if count == 0:
            report.uncovered.append(vertex)
            continue
        copies_total += count
        copies_min = count if copies_min is None else min(copies_min, count)
        copies_max = max(copies_max, count)
        for bid in candidates:
            if bid in seen_blocks:
                continue
            seen_blocks.add(bid)
            block = blocking.block(bid)
            if len(block) > blocking.block_size:
                report.oversized_blocks.append(bid)
            if vertex not in block:
                # blocks_for must be consistent with block contents.
                report.uncovered.append(vertex)
    if report.vertices_checked:
        covered = report.vertices_checked - len(report.uncovered)
        report.mean_copies = copies_total / max(covered, 1)
    report.min_copies = copies_min or 0
    report.max_copies = copies_max
    return report


def validate_against_graph(
    blocking: Blocking, graph: FiniteGraph
) -> BlockingReport:
    """Validate a blocking against every vertex of a finite graph, and
    cross-check the declared blow-up against the measured mean
    replication for explicit blockings."""
    report = validate_blocking(blocking, graph.vertices())
    if isinstance(blocking, ExplicitBlocking) and report.ok:
        # s = (#blocks * B) / n counts slack slots too; mean copies is
        # the tighter per-vertex measure and can't exceed it.
        assert report.mean_copies <= blocking.storage_blowup() + 1e-9
    return report

"""Isothetic hypercube tessellations of ``Z^d`` (Section 6.3.3).

A tessellation partitions the lattice into axis-aligned cubes of side
``c`` ("isothetic hypercubes"). Two families:

* :class:`UniformTessellation` — a translate of the standard cubical
  grid. Lemma 29/30: any such stacking has *complexes* (corner points
  incident on many tiles) of degree up to ``2^d >= d + 1``, which the
  Lemma 31 adversary exploits.
* :class:`ShearedTessellation` — Lemma 28's construction: layers along
  the last dimension, each layer's (d-1)-dimensional pattern offset by
  ``i/p`` of a side in dimension ``i`` per layer (``p`` the smallest
  prime ``>= d``), so that no point is incident on more than ``d + 1``
  tiles. The exact degree bound requires ``p | side``; use
  :func:`sheared_side` to pick a compliant side for a block size.

Tile ids are opaque tuples; cells are lattice coordinates.
"""

from __future__ import annotations

import abc
import itertools
import math
from typing import Iterator

from repro.analysis.theory import smallest_prime_at_least
from repro.errors import AnalysisError
from repro.typing import Coord


class Tessellation(abc.ABC):
    """A partition of ``Z^d`` into axis-aligned cubes of equal side."""

    def __init__(self, dim: int, side: int) -> None:
        if dim < 1:
            raise AnalysisError(f"dim must be >= 1, got {dim}")
        if side < 1:
            raise AnalysisError(f"side must be >= 1, got {side}")
        self._dim = dim
        self._side = side

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def side(self) -> int:
        return self._side

    @property
    def tile_volume(self) -> int:
        return self._side ** self._dim

    @abc.abstractmethod
    def tile_of(self, coord: Coord) -> tuple:
        """The id of the tile containing ``coord``."""

    @abc.abstractmethod
    def tile_origin(self, tile_id: tuple) -> Coord:
        """The lexicographically smallest cell of the tile."""

    def cells(self, tile_id: tuple) -> Iterator[Coord]:
        """All lattice points of the tile."""
        origin = self.tile_origin(tile_id)
        ranges = [range(o, o + self._side) for o in origin]
        return itertools.product(*ranges)

    def boundary_distance(self, coord: Coord) -> int:
        """Graph (L1 or Chebyshev — they agree on axis-aligned faces)
        distance from ``coord`` to the nearest cell *outside* its tile:
        ``min_i min(x_i - lo_i, hi_i - 1 - x_i) + 1``."""
        origin = self.tile_origin(self.tile_of(coord))
        slack = min(
            min(x - o, o + self._side - 1 - x) for x, o in zip(coord, origin)
        )
        return slack + 1


class UniformTessellation(Tessellation):
    """The standard cubical tessellation translated by ``offset``."""

    def __init__(self, dim: int, side: int, offset: Coord | None = None) -> None:
        super().__init__(dim, side)
        self._offset = tuple(offset) if offset is not None else (0,) * dim
        if len(self._offset) != dim:
            raise AnalysisError(
                f"offset has {len(self._offset)} components; expected {dim}"
            )

    @property
    def offset(self) -> Coord:
        return self._offset

    def tile_of(self, coord: Coord) -> tuple:
        return tuple(
            (x - o) // self._side for x, o in zip(coord, self._offset)
        )

    def tile_origin(self, tile_id: tuple) -> Coord:
        return tuple(
            t * self._side + o for t, o in zip(tile_id, self._offset)
        )


class ShearedTessellation(Tessellation):
    """Lemma 28's layered, sheared cubical tessellation, built
    recursively: the d-dimensional pattern is a stack of
    (d-1)-dimensional sheared patterns along the last axis, where the
    stack's layer ``l`` is translated by ``l * i * c / p_d`` in
    dimension ``i`` (1-indexed), with ``p_j`` the smallest prime
    ``>= j``. Each lower level applies the same rule with its own
    prime, so a layer's internal complexes of degree ``j`` always land
    in the middle of a face of the adjacent layer; the maximum complex
    degree is ``d + 1`` (verified by exhaustive scan in the tests for
    ``d <= 4``).

    In one dimension there is nothing to shear and this degenerates to
    the uniform tessellation. For the degree bound to be exact the
    side should be a multiple of ``lcm(p_2, ..., p_d)`` (use
    :func:`sheared_side`); other sides round the shear and may in
    principle create an extra incidence.
    """

    def __init__(self, dim: int, side: int) -> None:
        super().__init__(dim, side)
        # _primes[j] is the shear prime of the stacking at (1-indexed)
        # dimension j+1; index 0 is unused padding.
        self._primes = [smallest_prime_at_least(j) for j in range(dim + 1)]

    @property
    def primes(self) -> list[int]:
        """Shear primes, indexed by 1-based stacking dimension."""
        return list(self._primes)

    def tile_of(self, coord: Coord) -> tuple:
        c, d = self._side, self._dim
        shifts = [0] * d
        idx = [0] * d
        for j in range(d - 1, -1, -1):
            layer = (coord[j] - shifts[j]) // c
            idx[j] = layer
            # Stacking along (0-based) dim j shears every lower dim i
            # by (i+1)/p_{j+1} of a side per layer.
            p = self._primes[j + 1]
            for i in range(j):
                shifts[i] += layer * ((i + 1) * c // p)
        return tuple(idx)

    def tile_origin(self, tile_id: tuple) -> Coord:
        c, d = self._side, self._dim
        shifts = [0] * d
        for j in range(d - 1, -1, -1):
            layer = tile_id[j]
            p = self._primes[j + 1]
            for i in range(j):
                shifts[i] += layer * ((i + 1) * c // p)
        return tuple(tile_id[i] * c + shifts[i] for i in range(d))


def shear_lcm(dim: int) -> int:
    """``lcm(p_2, ..., p_d)`` — sides divisible by this make every
    shear offset exact."""
    value = 1
    for j in range(2, dim + 1):
        value = math.lcm(value, smallest_prime_at_least(j))
    return value


def sheared_side(block_size: int, dim: int) -> int:
    """The largest cube side usable by Lemma 28 for block size ``B``:
    at most ``floor(B^(1/d))``, rounded down to a multiple of the shear
    primes' lcm so the offsets are exact (falling back to the raw side
    when the lcm itself is too large)."""
    if block_size < 1:
        raise AnalysisError(f"block size must be >= 1, got {block_size}")
    side = _integer_root(block_size, dim)
    if dim == 1:
        return side
    lcm = shear_lcm(dim)
    if side >= lcm:
        return (side // lcm) * lcm
    return side


def _integer_root(value: int, degree: int) -> int:
    """``floor(value ** (1/degree))`` computed exactly."""
    if value < 1:
        raise AnalysisError(f"value must be >= 1, got {value}")
    if degree == 1:
        return value
    root = int(round(value ** (1.0 / degree)))
    while root ** degree > value:
        root -= 1
    while (root + 1) ** degree <= value:
        root += 1
    return max(root, 1)


def complex_degree(tess: Tessellation, corner: Coord) -> int:
    """The degree of the corner point ``corner`` (Definition 9): the
    number of distinct tiles among the ``2^d`` cells incident on it —
    the cells whose coordinates are ``corner_i - 1`` or ``corner_i``."""
    if len(corner) != tess.dim:
        raise AnalysisError(
            f"corner has {len(corner)} components; expected {tess.dim}"
        )
    tiles = {
        tess.tile_of(tuple(c + delta for c, delta in zip(corner, deltas)))
        for deltas in itertools.product((-1, 0), repeat=tess.dim)
    }
    return len(tiles)


def max_complex_degree(
    tess: Tessellation, window_lo: Coord, window_hi: Coord
) -> tuple[int, Coord]:
    """Scan all corners in the half-open box and return the largest
    complex degree found with a witnessing corner."""
    ranges = [range(lo, hi) for lo, hi in zip(window_lo, window_hi)]
    best = 0
    witness: Coord | None = None
    for corner in itertools.product(*ranges):
        degree = complex_degree(tess, corner)
        if degree > best:
            best = degree
            witness = corner
    if witness is None:
        raise AnalysisError("empty scan window")
    return best, witness


def find_complex(
    tess: Tessellation,
    min_degree: int,
    window_lo: Coord,
    window_hi: Coord,
) -> Coord | None:
    """The first corner in the box with degree >= ``min_degree``, if any."""
    ranges = [range(lo, hi) for lo, hi in zip(window_lo, window_hi)]
    for corner in itertools.product(*ranges):
        if complex_degree(tess, corner) >= min_degree:
            return corner
    return None


def corner_cells_gray_order(corner: Coord) -> list[Coord]:
    """The ``2^d`` cells incident on a corner, ordered so consecutive
    cells differ in exactly one coordinate (a Gray-code loop) — a legal
    grid-graph walk around the corner, used by the Lemma 31 adversary.
    The order is cyclic: the last cell is also one step from the first.
    """
    d = len(corner)
    cells: list[Coord] = []
    for rank in range(2 ** d):
        gray = rank ^ (rank >> 1)
        cells.append(
            tuple(corner[i] - ((gray >> i) & 1) for i in range(d))
        )
    return cells

"""Neighborhoods, balls, and compact k-neighborhoods (Definitions 1-3, 7).

* A *k-neighborhood* of ``v`` is any k-set of vertices containing ``v``.
* Its *break-out distance* ``b(v, N)`` is the distance from ``v`` to the
  nearest vertex outside ``N``.
* A *compact* k-neighborhood maximizes the break-out distance; its
  break-out distance is the *k-radius* ``r_v(k)``.
* The *ball* ``K_v(r)`` is every vertex within distance ``r`` of ``v``;
  its cardinality is the *volume* ``k_v(r)``.

The k nearest vertices in BFS order always form a compact
k-neighborhood (the proof of Lemma 2: any set sandwiched between the
open and closed balls at the critical radius is compact, and BFS order
produces exactly such a set — moreover a *connected* one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.graphs.base import Graph
from repro.graphs.traversal import bfs_distances
from repro.typing import Vertex


@dataclass(frozen=True)
class CompactNeighborhood:
    """A compact k-neighborhood and its break-out distance.

    ``radius`` is the paper's ``r_v(k)``: the distance from the center
    to the nearest vertex *not* in the neighborhood. It is
    ``math.inf`` when the whole (component of the) graph has at most
    ``k`` vertices, so no break-out vertex exists.
    """

    center: Vertex
    vertices: frozenset[Vertex]
    radius: float

    def __len__(self) -> int:
        return len(self.vertices)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self.vertices


def ball(graph: Graph, center: Vertex, radius: int) -> dict[Vertex, int]:
    """The ball ``K_v(r)``: vertices within ``radius`` of ``center``,
    mapped to their distances."""
    if radius < 0:
        raise AnalysisError(f"radius must be >= 0, got {radius}")
    return bfs_distances(graph, center, max_radius=radius)


def ball_volume(graph: Graph, center: Vertex, radius: int) -> int:
    """The volume ``k_v(r) = |K_v(r)|`` (Definition 7)."""
    return len(ball(graph, center, radius))


def compact_neighborhood(graph: Graph, center: Vertex, k: int) -> CompactNeighborhood:
    """A connected compact k-neighborhood of ``center`` (Lemma 2).

    Takes the ``k`` vertices nearest to ``center`` in BFS order. The
    returned radius is exact: the distance of the nearest excluded
    vertex, i.e. the (k+1)-st smallest distance from ``center``.

    Works on infinite graphs: BFS stops once ``k + 1`` vertices are
    settled.
    """
    if k < 1:
        raise AnalysisError(f"k must be >= 1, got {k}")
    distances = bfs_distances(graph, center, max_vertices=k + 1)
    ordered = list(distances.items())
    chosen = frozenset(v for v, _ in ordered[:k])
    if len(ordered) <= k:
        return CompactNeighborhood(center, chosen, math.inf)
    # BFS settles vertices in nondecreasing distance order, so the
    # (k+1)-st settled vertex is the nearest one excluded.
    radius = ordered[k][1]
    return CompactNeighborhood(center, chosen, float(radius))


def breakout_distance(graph: Graph, center: Vertex, neighborhood) -> float:
    """The break-out distance ``b(v, N)`` of an arbitrary neighborhood
    (Definition 2). ``math.inf`` when nothing lies outside it.

    Runs a BFS from ``center`` that halts at the first vertex outside
    ``neighborhood``; on infinite graphs this always terminates because
    the neighborhood is finite.
    """
    members = set(neighborhood)
    if center not in members:
        raise AnalysisError(f"{center!r} is not in its own neighborhood")
    # Cap the search: once more vertices than |N| are settled, a
    # breakout must already have been seen.
    distances = bfs_distances(graph, center, max_vertices=len(members) + 1)
    outside = [d for v, d in distances.items() if v not in members]
    if not outside:
        return math.inf
    return float(min(outside))

"""Skeletal Steiner trees and group numbering (Lemmas 11-12).

The paper's strongest general upper bound (``sigma <= 8 r^+(B)``,
Lemma 12) is constructive: the adversary builds

1. a *maximal close packing* of balls of radius ``r^+(B)``,
2. a *skeletal Steiner tree* — a tree connecting the packing centers
   through shortest paths,
3. a *group assignment* — every graph vertex attached to its nearest
   skeletal-tree vertex,
4. a *numbering* of all vertices in depth-first-circuit order of the
   skeletal tree (groups numbered when their parent is first visited),

and then walks the tree visiting, at each fault, the lowest-numbered
uncovered vertex. This module builds those four artifacts; the walk
itself is :class:`repro.adversaries.tour.SteinerTourAdversary`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ballcover import maximal_ball_packing
from repro.errors import AnalysisError
from repro.graphs.adjacency import subgraph
from repro.graphs.base import FiniteGraph
from repro.graphs.traversal import (
    bfs_distances,
    bfs_spanning_tree,
    depth_first_circuit,
    shortest_path,
)
from repro.cache import cached
from repro.typing import Vertex


@dataclass
class SkeletalSteinerTree:
    """The Lemma 11/12 construction.

    Attributes:
        centers: packing-ball centers, in construction order.
        tree: children lists of the skeletal tree (keys: every tree
            vertex, including path vertices between centers).
        root: the distinguished start vertex (first center).
        circuit: the depth-first circuit of the tree (Definition 6).
        groups: ``vertex -> skeletal tree vertex`` nearest-assignment
            for *every* graph vertex.
        numbering: ``vertex -> rank`` in the proof's visit order.
        order: the inverse of ``numbering`` — vertices by rank.
    """

    centers: list[Vertex]
    tree: dict[Vertex, list[Vertex]]
    root: Vertex
    circuit: list[Vertex]
    groups: dict[Vertex, Vertex]
    numbering: dict[Vertex, int]
    order: list[Vertex]

    @property
    def tree_vertices(self) -> set[Vertex]:
        return set(self.tree)


def _center_spanning_edges(
    graph: FiniteGraph, centers: list[Vertex]
) -> list[tuple[Vertex, Vertex]]:
    """A spanning tree of the centers under graph distance (Prim)."""
    # Insertion-ordered (RL003): `remaining` is scanned below with a
    # strict-< tie-break, so its iteration order must be the centers'
    # construction order, not hash order.
    remaining = dict.fromkeys(centers[1:])
    in_tree = [centers[0]]
    edges: list[tuple[Vertex, Vertex]] = []
    # Distances from each tree member, computed lazily and cached.
    dist_cache: dict[Vertex, dict[Vertex, int]] = {}
    while remaining:
        best: tuple[int, Vertex, Vertex] | None = None
        for u in in_tree:
            if u not in dist_cache:
                dist_cache[u] = bfs_distances(graph, u)
            du = dist_cache[u]
            for v in remaining:
                d = du.get(v)
                if d is not None and (best is None or d < best[0]):
                    best = (d, u, v)
        if best is None:
            raise AnalysisError("centers are not mutually reachable")
        _, u, v = best
        edges.append((u, v))
        in_tree.append(v)
        del remaining[v]
    return edges


def build_skeletal_steiner_tree(
    graph: FiniteGraph, radius: int
) -> SkeletalSteinerTree:
    """Build the full Lemma 12 artifact for a connected finite graph.

    Args:
        graph: the searched graph.
        radius: the packing-ball radius; the proofs use ``r^+(B)``.

    The artifact is a pure function of the graph and radius (every step
    is deterministic over the graph's vertex order), so graphs with a
    :meth:`cache_key` get it from the construction cache; the Steiner
    tour is one of the sweep's most expensive builds.
    """
    graph_key = graph.cache_key()
    key = None if graph_key is None else (graph_key, radius)
    return cached(
        "steiner.skeleton", key, lambda: _build_skeletal_steiner_tree(graph, radius)
    )


def _build_skeletal_steiner_tree(
    graph: FiniteGraph, radius: int
) -> SkeletalSteinerTree:
    centers = maximal_ball_packing(graph, radius)
    if not centers:
        raise AnalysisError("graph has no vertices")
    # Realize a center spanning tree as shortest paths in the graph.
    # Insertion-ordered (RL003): the subgraph and group assignment
    # below inherit this iteration order, so it must be deterministic.
    tree_vertex_set: dict[Vertex, None] = dict.fromkeys([centers[0]])
    for u, v in _center_spanning_edges(graph, centers):
        tree_vertex_set.update(dict.fromkeys(shortest_path(graph, u, v)))
    skeleton_graph = subgraph(graph, tree_vertex_set)
    root = centers[0]
    tree = bfs_spanning_tree(skeleton_graph, root)
    if len(tree) != len(tree_vertex_set):
        raise AnalysisError("skeletal subgraph is not connected")
    circuit = depth_first_circuit(tree, root)
    groups = _group_assignment(graph, tree_vertex_set)
    numbering, order = _steiner_numbering(circuit, groups)
    if len(numbering) != len(graph):
        raise AnalysisError(
            "numbering does not cover the graph (is it connected?)"
        )
    return SkeletalSteinerTree(
        centers=centers,
        tree=tree,
        root=root,
        circuit=circuit,
        groups=groups,
        numbering=numbering,
        order=order,
    )


def _group_assignment(
    graph: FiniteGraph, tree_vertices: "dict[Vertex, None] | list[Vertex]"
) -> dict[Vertex, Vertex]:
    """Assign each graph vertex to its nearest skeletal-tree vertex
    (multi-source BFS; ties go to the earlier-reached parent).

    ``tree_vertices`` must be an *ordered* collection (RL003): the
    tie-break depends on frontier order, which must be deterministic.
    """
    assignment = {v: v for v in tree_vertices}
    frontier = list(tree_vertices)
    while frontier:
        nxt: list[Vertex] = []
        for u in frontier:
            owner = assignment[u]
            for v in graph.neighbors(u):
                if v not in assignment:
                    assignment[v] = owner
                    nxt.append(v)
        frontier = nxt
    return assignment


def _steiner_numbering(
    circuit: list[Vertex], groups: dict[Vertex, Vertex]
) -> tuple[dict[Vertex, int], list[Vertex]]:
    """Number vertices in the proof's order: walk the depth-first
    circuit; at the first visit of each tree vertex, number the members
    of its group (parent first, then the rest in stable order)."""
    members: dict[Vertex, list[Vertex]] = {}
    for vertex, parent in groups.items():
        members.setdefault(parent, []).append(vertex)
    numbering: dict[Vertex, int] = {}
    order: list[Vertex] = []
    for tree_vertex in circuit:
        if tree_vertex in numbering:
            continue
        group = members.get(tree_vertex, [])
        # Parent (the tree vertex itself) gets numbered first.
        for vertex in [tree_vertex] + [v for v in group if v != tree_vertex]:
            if vertex not in numbering:
                numbering[vertex] = len(order)
                order.append(vertex)
    return numbering, order

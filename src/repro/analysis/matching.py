"""Maximal matchings and maximal path packings (Section 4.2).

The BALL COVER constructions rest on two packing primitives:

* a *maximal matching* — a set of vertex-disjoint edges to which no
  further vertex-disjoint edge can be added (Lemmas 14-15);
* a *maximal packing of paths* on ``2j + 1`` vertices — vertex-disjoint
  simple paths, maximal in the same sense (Theorem 3; Lemma 16 is the
  ``j = 1`` case).

Maximality (not maximum-ness) is all the proofs need, so greedy
constructions suffice. Finding one more simple path on ``L`` vertices
in the residual graph is done by depth-limited backtracking DFS, which
is exact; it is exponential in ``L`` in the worst case but the library
only ever needs small ``L = 2*floor(r/3) + 1``.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import AnalysisError
from repro.graphs.base import FiniteGraph, Graph
from repro.typing import Vertex


def maximal_matching(graph: FiniteGraph) -> list[tuple[Vertex, Vertex]]:
    """A greedy maximal matching.

    Scans vertices in iteration order; matches each unmatched vertex
    with its first unmatched neighbor. The result is maximal: every
    edge of the graph has a matched endpoint.
    """
    matched: set[Vertex] = set()
    matching: list[tuple[Vertex, Vertex]] = []
    for u in graph.vertices():
        if u in matched:
            continue
        for v in graph.neighbors(u):
            if v not in matched:
                matching.append((u, v))
                matched.add(u)
                matched.add(v)
                break
    return matching


def find_simple_path(
    graph: Graph, length: int, allowed: Iterable[Vertex]
) -> list[Vertex] | None:
    """A simple path on exactly ``length`` vertices inside ``allowed``.

    Exact depth-limited backtracking. Returns the vertex sequence or
    ``None`` when no such path exists (which certifies maximality for
    the packing loop).
    """
    if length < 1:
        raise AnalysisError(f"path length must be >= 1 vertex, got {length}")
    starts = list(dict.fromkeys(allowed))  # deduplicate, preserve order
    allowed_set = set(starts)
    for start in starts:
        path = [start]
        on_path = {start}
        # Each stack frame is an iterator over the untried neighbors.
        stack = [iter(graph.neighbors(start))]
        while stack:
            if len(path) == length:
                return path
            advanced = False
            for nxt in stack[-1]:
                if nxt in allowed_set and nxt not in on_path:
                    path.append(nxt)
                    on_path.add(nxt)
                    stack.append(iter(graph.neighbors(nxt)))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                on_path.discard(path.pop())
    return None


def maximal_path_packing(
    graph: FiniteGraph, vertices_per_path: int
) -> list[list[Vertex]]:
    """A maximal packing of vertex-disjoint simple paths.

    Repeatedly extracts a simple path on ``vertices_per_path`` vertices
    from the unused portion of the graph until none remains. The
    result is maximal by construction: the final failed search proves
    no further path fits.
    """
    if vertices_per_path < 1:
        raise AnalysisError(
            f"vertices_per_path must be >= 1, got {vertices_per_path}"
        )
    unused = set(graph.vertices())
    packing: list[list[Vertex]] = []
    while True:
        # Pass candidates in graph iteration order for determinism.
        candidates = [v for v in graph.vertices() if v in unused]
        path = find_simple_path(graph, vertices_per_path, candidates)
        if path is None:
            return packing
        packing.append(path)
        unused.difference_update(path)


def matching_is_maximal(
    graph: FiniteGraph, matching: Iterable[tuple[Vertex, Vertex]]
) -> bool:
    """Whether no vertex-disjoint edge can be added to ``matching``."""
    matched: set[Vertex] = set()
    for u, v in matching:
        matched.add(u)
        matched.add(v)
    for u in graph.vertices():
        if u in matched:
            continue
        for v in graph.neighbors(u):
            if v not in matched:
                return False
    return True

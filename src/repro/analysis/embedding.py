"""Linear arrangements and the proximity question (Section 1).

The paper's introduction examines a tempting heuristic: linearize the
graph (Rosenberg's array-embedding setting [6,7]), cut the line into
chunks of ``B``, and use the chunks as blocks. Rosenberg proved no
linear mapping preserves proximity globally in arrays; the paper adds
that the heuristic "does not hold even for finite arrays, as long as
the array structure is much larger than the memory size".

This module makes both halves measurable:

* linearizations of 2-D grids (row-major, boustrophedon, Hilbert,
  blocked/tile-major);
* :func:`proximity_blowup` — the worst stretch a graph edge suffers in
  storage, Rosenberg's quantity;
* :func:`linearization_blocking` — the chunking heuristic as an actual
  ``s = 1`` blocking, ready to be played against the adversaries.

The companion benchmark (``bench_embedding.py``) shows every
linearization chunking loses to the native tessellation blockings under
the worst-case walk — the intro's claim, measured.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.blocking import ExplicitBlocking
from repro.errors import AnalysisError
from repro.graphs.base import FiniteGraph
from repro.typing import Coord, Vertex
from repro.workloads import boustrophedon_scan, hilbert_scan


def row_major_linearization(shape: Sequence[int]) -> list[Coord]:
    """Cells of a 2-D grid in row-major order (not a legal walk — a
    storage order)."""
    if len(shape) != 2:
        raise AnalysisError(f"expected a 2-D shape, got {tuple(shape)}")
    width, height = shape
    return [(x, y) for y in range(height) for x in range(width)]


def boustrophedon_linearization(shape: Sequence[int]) -> list[Coord]:
    """The snake order (this one *is* also a legal walk)."""
    return boustrophedon_scan(shape)


def hilbert_linearization(order: int) -> list[Coord]:
    """The Hilbert order on a ``2^order`` square."""
    return hilbert_scan(order)


def tile_major_linearization(shape: Sequence[int], side: int) -> list[Coord]:
    """Tiles in row-major order, cells row-major within each tile —
    the arrangement that makes chunking coincide with a tessellation
    blocking when ``B = side^2`` and extents divide evenly."""
    if len(shape) != 2:
        raise AnalysisError(f"expected a 2-D shape, got {tuple(shape)}")
    width, height = shape
    if side < 1:
        raise AnalysisError(f"side must be >= 1, got {side}")
    order: list[Coord] = []
    for tile_y in range(0, height, side):
        for tile_x in range(0, width, side):
            for y in range(tile_y, min(tile_y + side, height)):
                for x in range(tile_x, min(tile_x + side, width)):
                    order.append((x, y))
    return order


def proximity_blowup(graph: FiniteGraph, order: Sequence[Vertex]) -> int:
    """Rosenberg's stretch: the maximum |pos(u) - pos(v)| over edges
    ``(u, v)`` — how far graph-adjacent items can land in storage."""
    position = {v: i for i, v in enumerate(order)}
    if len(position) != len(order):
        raise AnalysisError("linearization repeats a vertex")
    missing = [v for v in graph.vertices() if v not in position]
    if missing:
        raise AnalysisError(
            f"linearization misses {len(missing)} vertices (e.g. {missing[0]!r})"
        )
    worst = 0
    for u, v in graph.edges():
        worst = max(worst, abs(position[u] - position[v]))
    return worst


def average_proximity(graph: FiniteGraph, order: Sequence[Vertex]) -> float:
    """DeMillo/Eisenstat/Lipton's average-case variant: the mean edge
    stretch under the arrangement."""
    position = {v: i for i, v in enumerate(order)}
    total = 0
    count = 0
    for u, v in graph.edges():
        total += abs(position[u] - position[v])
        count += 1
    if count == 0:
        raise AnalysisError("graph has no edges")
    return total / count


def linearization_blocking(
    order: Sequence[Vertex], block_size: int, universe_size: int | None = None
) -> ExplicitBlocking:
    """The intro's heuristic: chunk the linear order into blocks of
    ``B`` consecutive items (``s = 1``)."""
    if not order:
        raise AnalysisError("empty linearization")
    blocks = {
        ("chunk", i): set(order[i * block_size : (i + 1) * block_size])
        for i in range((len(order) + block_size - 1) // block_size)
    }
    return ExplicitBlocking(block_size, blocks, universe_size=universe_size)


def stretch_profile(
    graph: FiniteGraph, orders: dict[str, Sequence[Vertex]]
) -> dict[str, tuple[int, float]]:
    """(max, mean) edge stretch for each named linearization."""
    return {
        name: (proximity_blowup(graph, order), average_proximity(graph, order))
        for name, order in orders.items()
    }

"""BALL COVER solvers (Section 4.2).

Problem BALL COVER(r): find a smallest vertex set ``V'`` such that
every vertex of the graph lies within distance ``r`` of some member.
The paper does not solve it optimally (it is NP-hard already at
``r = 1``, by reduction from VERTEX COVER — Lemma 14); instead it gives
constructions with *cardinality guarantees* that translate into
storage-blow-up guarantees for the Theorem 4/6 blockings:

=====================  ======================  ==================
construction           solves                  cardinality
=====================  ======================  ==================
vertex cover (L14)     BALL COVER(1)           <= n (2-approx VC)
matching ends (L15)    BALL COVER(2)           <= floor(n/2)
path packing (Thm 3)   BALL COVER(3j)          <= floor(n/(2j+1))
corollary 2            BALL COVER(r)           <= n/(2*floor(r/3)+1)
ball packing (Thm 5)   BALL COVER(r)           <= n / k^-(floor(r/2))
greedy (baseline)      BALL COVER(r)           no guarantee
=====================  ======================  ==================
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.matching import maximal_matching, maximal_path_packing
from repro.analysis.neighborhoods import ball
from repro.cache import cached
from repro.errors import AnalysisError
from repro.graphs.base import FiniteGraph
from repro.graphs.traversal import bfs_distances
from repro.typing import Vertex


def _cover_key(graph: FiniteGraph, *params) -> tuple | None:
    """Cache key for a cover construction on ``graph``, if it has one.

    Covers are memoized as tuples (insertion order of construction) and
    copied on return, so callers may mutate their copy freely.
    """
    graph_key = graph.cache_key()
    if graph_key is None:
        return None
    return (graph_key, *params)


def vertex_cover_2approx(graph: FiniteGraph) -> list[Vertex]:
    """Both endpoints of a maximal matching: a 2-approximate vertex
    cover, hence a BALL COVER(1) by Lemma 14."""

    def build() -> tuple[Vertex, ...]:
        cover: set[Vertex] = set()
        order: list[Vertex] = []
        for u, v in maximal_matching(graph):
            for w in (u, v):
                if w not in cover:
                    cover.add(w)
                    order.append(w)
        if not order:
            # Edgeless graph: every vertex must cover itself.
            order = list(graph.vertices())
        return tuple(order)

    return list(cached("ballcover.vc2", _cover_key(graph), build))


def ball_cover_matching(graph: FiniteGraph) -> list[Vertex]:
    """Lemma 15: one endpoint per maximal-matching edge solves
    BALL COVER(2) with at most ``floor(n/2)`` centers (``n >= 2``)."""
    def build() -> tuple[Vertex, ...]:
        matching = maximal_matching(graph)
        if not matching:
            # Single vertex (or edgeless) graph.
            return tuple(graph.vertices())
        return tuple(u for u, _ in matching)

    return list(cached("ballcover.matching", _cover_key(graph), build))


def ball_cover_path_packing(graph: FiniteGraph, j: int) -> list[Vertex]:
    """Theorem 3: centers of a maximal packing of paths on ``2j + 1``
    vertices solve BALL COVER(3j) with at most ``floor(n/(2j+1))``
    centers (when ``n >= 2j + 1``)."""
    if j < 1:
        raise AnalysisError(f"j must be >= 1, got {j}")

    def build() -> tuple[Vertex, ...]:
        packing = maximal_path_packing(graph, 2 * j + 1)
        if not packing:
            # No path of 2j+1 vertices exists: the graph has diameter
            # < 2j+1, so any single vertex covers everything within 3j.
            first = next(iter(graph.vertices()), None)
            if first is None:
                raise AnalysisError("graph has no vertices")
            return (first,)
        return tuple(path[j] for path in packing)

    return list(cached("ballcover.pathpack", _cover_key(graph, j), build))


def ball_cover_corollary2(graph: FiniteGraph, radius: int) -> list[Vertex]:
    """Corollary 2: BALL COVER(r) with ``<= n/(2*floor(r/3)+1)``
    centers, via Theorem 3 at ``j = floor(r/3)``.

    Requires ``r >= 3`` (smaller radii: use the Lemma 14/15 routes).
    """
    if radius < 3:
        raise AnalysisError(f"corollary 2 needs r >= 3, got {radius}")
    return ball_cover_path_packing(graph, radius // 3)


def maximal_ball_packing(graph: FiniteGraph, radius: int) -> list[Vertex]:
    """Centers of a maximal packing of pairwise-disjoint balls of the
    given radius (the Theorem 5 primitive).

    Greedy over vertex iteration order: a vertex becomes a center when
    its ball avoids every previously chosen ball.
    """
    if radius < 0:
        raise AnalysisError(f"radius must be >= 0, got {radius}")

    def build() -> tuple[Vertex, ...]:
        occupied: set[Vertex] = set()
        centers: list[Vertex] = []
        for v in graph.vertices():
            if v in occupied:
                continue
            candidate_ball = ball(graph, v, radius)
            if occupied.isdisjoint(candidate_ball):
                centers.append(v)
                occupied.update(candidate_ball)
        return tuple(centers)

    return list(cached("ballcover.packing", _cover_key(graph, radius), build))


def ball_cover_packing(graph: FiniteGraph, radius: int) -> list[Vertex]:
    """Theorem 5: centers of a maximal packing of balls of radius
    ``floor(r/2)`` solve BALL COVER(r), with cardinality at most
    ``n / k^-(floor(r/2))``."""
    if radius < 0:
        raise AnalysisError(f"radius must be >= 0, got {radius}")
    return list(maximal_ball_packing(graph, radius // 2))


def ball_cover_greedy(graph: FiniteGraph, radius: int) -> list[Vertex]:
    """Greedy set-cover baseline: repeatedly pick the vertex whose ball
    covers the most still-uncovered vertices.

    No cardinality guarantee from the paper; included as the practical
    comparator the ablation benchmarks measure against.
    """
    if radius < 0:
        raise AnalysisError(f"radius must be >= 0, got {radius}")
    uncovered = set(graph.vertices())
    balls = {v: set(ball(graph, v, radius)) for v in graph.vertices()}
    # Pick order is deterministic: `max` ties resolve to the first key
    # in `balls`, whose order is the graph's vertex order (RL003).
    centers: list[Vertex] = []
    while uncovered:
        best = max(balls, key=lambda v: len(balls[v] & uncovered))
        gain = balls[best] & uncovered
        if not gain:
            raise AnalysisError("greedy cover stalled (disconnected graph?)")
        centers.append(best)
        uncovered -= gain
        del balls[best]
    return centers


def is_ball_cover(
    graph: FiniteGraph, centers: Iterable[Vertex], radius: int
) -> bool:
    """Verify the BALL COVER property: every vertex within ``radius``
    of some center (multi-source BFS)."""
    center_list = list(centers)
    if not center_list:
        return len(graph) == 0
    reached: set[Vertex] = set(center_list)
    frontier: list[Vertex] = list(dict.fromkeys(center_list))
    for _ in range(radius):
        nxt: list[Vertex] = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in reached:
                    reached.add(v)
                    nxt.append(v)
        if not nxt:
            break
        frontier = nxt
    return len(reached) == len(graph)


def nearest_center_map(
    graph: FiniteGraph, centers: Iterable[Vertex]
) -> dict[Vertex, Vertex]:
    """Map every vertex to its nearest center (ties broken by BFS
    arrival order — pass an *ordered* collection, RL003). Used by the
    Theorem 4 paging policy, which must find a block center within
    ``r/2`` of any faulting vertex."""
    center_list = list(centers)
    if not center_list:
        raise AnalysisError("no centers given")
    assignment: dict[Vertex, Vertex] = {}
    frontier: list[Vertex] = []
    for c in center_list:
        if c not in assignment:
            assignment[c] = c
            frontier.append(c)
    while frontier:
        nxt: list[Vertex] = []
        for u in frontier:
            owner = assignment[u]
            for v in graph.neighbors(u):
                if v not in assignment:
                    assignment[v] = owner
                    nxt.append(v)
        frontier = nxt
    return assignment

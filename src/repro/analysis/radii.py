"""Graph k-radii (Definitions 3-5) and ball-volume extrema (Definition 7).

``r_v(k)`` — the k-radius of a vertex — is the break-out distance of a
compact k-neighborhood. The graph-level extrema

* ``r^-(k) = min_v r_v(k)``   (minimum k-radius)
* ``r^+(k) = max_v r_v(k)``   (maximum k-radius)

drive the paper's general-graph bounds (Theorem 2 upper bounds are in
terms of ``r^+``, the Lemma 13 / Theorem 4 blockings deliver ``r^-``).
A class of graphs with ``r^+(k)/r^-(k)`` bounded is *k-uniform*
(Definition 5); for those, upper and lower bounds match to constants.

Also provided: ``k^-(r)`` and ``k^+(r)``, the minimum and maximum ball
volumes (Definition 7), used by the Theorem 5/6 ball-cover bound.
"""

from __future__ import annotations

import math
import random
from typing import Iterable

from repro.analysis.neighborhoods import ball_volume, compact_neighborhood
from repro.cache import cached
from repro.errors import AnalysisError
from repro.graphs.base import FiniteGraph, Graph
from repro.typing import Vertex


def vertex_radius(graph: Graph, vertex: Vertex, k: int) -> float:
    """The k-radius ``r_v(k)`` of one vertex (exact, via BFS)."""
    return compact_neighborhood(graph, vertex, k).radius


def _extremum_key(graph: FiniteGraph, k: int, sample: int | None) -> tuple | None:
    """Cache key for a graph-level extremum, or ``None`` if uncacheable.

    Exact (unsampled) extrema are pure functions of the graph identity
    and ``k``; sampled estimates additionally depend on the sampling
    seed, which callers vary, so they are not memoized.
    """
    if sample is not None:
        return None
    graph_key = graph.cache_key()
    if graph_key is None:
        return None
    return (graph_key, k)


def _resolve_vertices(
    graph: FiniteGraph, sample: int | None, seed: int
) -> Iterable[Vertex]:
    if sample is None:
        return graph.vertices()
    population = list(graph.vertices())
    if sample >= len(population):
        return population
    return random.Random(seed).sample(population, sample)


def min_radius(
    graph: FiniteGraph, k: int, sample: int | None = None, seed: int = 0
) -> float:
    """``r^-(k)``: the smallest k-radius over the graph.

    Args:
        sample: evaluate only this many randomly chosen vertices (an
            estimate for large graphs); ``None`` means exact.
        seed: sampling seed.

    Exact values on graphs with a :meth:`cache_key` are memoized in the
    construction cache (one BFS per vertex is the sweep's dominant
    analysis cost).
    """

    def build() -> float:
        values = (
            vertex_radius(graph, v, k)
            for v in _resolve_vertices(graph, sample, seed)
        )
        try:
            return min(values)
        except ValueError:
            raise AnalysisError("graph has no vertices") from None

    return cached("radii.min", _extremum_key(graph, k, sample), build)


def max_radius(
    graph: FiniteGraph, k: int, sample: int | None = None, seed: int = 0
) -> float:
    """``r^+(k)``: the largest k-radius over the graph."""

    def build() -> float:
        values = (
            vertex_radius(graph, v, k)
            for v in _resolve_vertices(graph, sample, seed)
        )
        try:
            return max(values)
        except ValueError:
            raise AnalysisError("graph has no vertices") from None

    return cached("radii.max", _extremum_key(graph, k, sample), build)


def radius_extrema(
    graph: FiniteGraph, k: int, sample: int | None = None, seed: int = 0
) -> tuple[float, float]:
    """``(r^-(k), r^+(k))`` in one pass."""

    def build() -> tuple[float, float]:
        lo = math.inf
        hi = -math.inf
        seen = False
        for v in _resolve_vertices(graph, sample, seed):
            r = vertex_radius(graph, v, k)
            lo = min(lo, r)
            hi = max(hi, r)
            seen = True
        if not seen:
            raise AnalysisError("graph has no vertices")
        return lo, hi

    return cached("radii.extrema", _extremum_key(graph, k, sample), build)


def uniformity_ratio(
    graph: FiniteGraph, k: int, sample: int | None = None, seed: int = 0
) -> float:
    """``r^+(k) / r^-(k)`` — the Definition 5 uniformity measure.

    For an infinite *class* of graphs, boundedness of this ratio over
    the class is what makes the general bounds tight; for one graph it
    quantifies how uniform the neighborhood structure is.
    """
    lo, hi = radius_extrema(graph, k, sample=sample, seed=seed)
    if lo == 0:
        raise AnalysisError("r^-(k) is zero; ratio undefined")
    if math.isinf(lo):
        return 1.0  # every vertex sees the whole graph inside k
    return hi / lo


def min_ball_volume(
    graph: FiniteGraph, radius: int, sample: int | None = None, seed: int = 0
) -> int:
    """``k^-(r)``: the smallest ball volume over the graph."""

    def build() -> int:
        values = (
            ball_volume(graph, v, radius)
            for v in _resolve_vertices(graph, sample, seed)
        )
        try:
            return min(values)
        except ValueError:
            raise AnalysisError("graph has no vertices") from None

    return cached("ballvol.min", _extremum_key(graph, radius, sample), build)


def max_ball_volume(
    graph: FiniteGraph, radius: int, sample: int | None = None, seed: int = 0
) -> int:
    """``k^+(r)``: the largest ball volume over the graph."""

    def build() -> int:
        values = (
            ball_volume(graph, v, radius)
            for v in _resolve_vertices(graph, sample, seed)
        )
        try:
            return max(values)
        except ValueError:
            raise AnalysisError("graph has no vertices") from None

    return cached("ballvol.max", _extremum_key(graph, radius, sample), build)

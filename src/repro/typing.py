"""Shared type aliases.

The library is generic over vertex identity: a vertex is any hashable
value. Concrete substrates pick convenient representations —

* general graphs use opaque hashables (often ``int`` or ``str``),
* complete d-ary trees use level-order integer indices,
* grid graphs use ``tuple[int, ...]`` coordinates.

Block identifiers are likewise arbitrary hashables chosen by each
blocking; callers should treat them as opaque tokens.
"""

from __future__ import annotations

from typing import Hashable, Tuple

Vertex = Hashable
BlockId = Hashable
Coord = Tuple[int, ...]

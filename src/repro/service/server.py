"""The thread-pool search service.

``SearchService`` runs many client searches against one shared blocked
store: a fixed pool of worker threads drains a bounded queue of
:class:`~repro.service.requests.RequestSpec`s, every request plays the
paper's game with a fresh private memory, and all block reads funnel
through one :class:`~repro.service.cache.SharedBlockCache` (per-tenant
budgets, single-flight fault coalescing).

Backpressure is typed and synchronous — ``submit`` never blocks and
never silently drops:

* the global queue is full → :class:`~repro.errors.ServiceOverloadError`
  (``scope="global"``);
* the tenant already has ``max_pending`` requests in the system →
  :class:`~repro.errors.ServiceOverloadError` (``scope="tenant"``);
* the service is draining → :class:`~repro.errors.ServiceClosedError`;
* a block can never fit the tenant's cache budget →
  :class:`~repro.errors.TenantBudgetError` (delivered through the
  request's future, since it surfaces mid-search).

Latency is accounted in *modeled work units* — steps plus a configured
cost per disk read (hits are near-free) — so percentiles are
deterministic for a deterministic schedule and machine-independent,
like every other statistic in this repository. Wall-clock throughput
belongs to the benchmarks.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Sequence

from repro.errors import (
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
    TenantBudgetError,
)
from repro.obs.events import ServiceRequestEvent, ServiceShedEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import TraceSink
from repro.service.cache import CacheStats, SharedBlockCache
from repro.service.requests import RequestSpec, run_request
from repro.service.stores import ServiceStore


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's bounds.

    ``cache_blocks`` is the cache budget in blocks of the store's
    ``B`` (``cache_copies`` overrides it with an exact copy count —
    mainly for tests that force a budget smaller than one block);
    ``max_pending`` bounds the tenant's queued + running requests.
    """

    name: str
    cache_blocks: int = 4
    cache_copies: int | None = None
    max_pending: int = 8

    def budget_copies(self, block_size: int) -> int:
        if self.cache_copies is not None:
            return self.cache_copies
        return self.cache_blocks * block_size


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs (all bounds, no wall-clock)."""

    workers: int = 2
    queue_bound: int = 32
    cache_blocks: int = 8
    read_cost: float = 10.0
    hit_cost: float = 1.0


@dataclass(frozen=True)
class RequestOutcome:
    """What one completed request cost."""

    spec: RequestSpec
    steps: int
    faults: int
    hits: int
    misses: int
    coalesced: int
    latency: float


class SearchService:
    """See the module docstring. Construction starts the worker pool;
    call :meth:`drain` exactly once to stop it."""

    def __init__(
        self,
        store: ServiceStore,
        tenants: Sequence[TenantConfig],
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
        sink: TraceSink | None = None,
    ) -> None:
        self.store = store
        self.config = config if config is not None else ServiceConfig()
        if self.config.workers < 1:
            raise ServiceError(f"need >= 1 worker, got {self.config.workers}")
        if not tenants:
            raise ServiceError("need at least one tenant")
        block_size = store.params.block_size
        self.cache = SharedBlockCache(self.config.cache_blocks * block_size)
        self.tenants: dict[str, TenantConfig] = {}
        for tenant in tenants:
            if tenant.name in self.tenants:
                raise ServiceError(f"duplicate tenant {tenant.name!r}")
            self.tenants[tenant.name] = tenant
            self.cache.register_tenant(
                tenant.name, tenant.budget_copies(block_size)
            )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._sink = sink
        self._sink_lock = threading.Lock()
        self._queue: "queue.Queue[tuple[RequestSpec, Future[RequestOutcome]] | None]" = (
            queue.Queue(maxsize=self.config.queue_bound)
        )
        self._state_lock = threading.Lock()
        self._pending: dict[str, int] = {name: 0 for name in self.tenants}
        self._closed = False
        self._drained = False
        # Instruments exist from the start so two identical bursts
        # produce byte-identical snapshots even when a family (sheds,
        # errors) never fires.
        for name in (
            "service_submitted",
            "service_completed",
            "service_errors",
            "service_cache_hits",
            "service_cache_misses",
            "service_cache_coalesced",
            "service_cache_evictions",
        ):
            self.metrics.counter(name)
        self.metrics.labeled_counter("service_requests_by_tenant")
        self.metrics.labeled_counter("service_shed")
        for name in ("service_latency", "service_steps", "service_faults"):
            self.metrics.histogram(name)
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"search-worker-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- client API --------------------------------------------------------

    def submit(self, spec: RequestSpec) -> "Future[RequestOutcome]":
        """Enqueue a request; returns its future.

        Raises (synchronously, without enqueueing) when the service is
        draining or a queue bound is hit — see the module docstring.
        """
        tenant = self.tenants.get(spec.tenant)
        if tenant is None:
            raise ServiceError(f"unknown tenant {spec.tenant!r}")
        # Admission is decided entirely under the state lock (so a
        # drain cannot slip between the closed check and the pending
        # bump), but shedding — metrics + sink emit, i.e. other locks
        # and possible I/O — happens strictly after release.
        shed_reason: str | None = None
        with self._state_lock:
            if self._closed:
                shed_reason = "closed"
            elif self._pending[spec.tenant] >= tenant.max_pending:
                shed_reason = "tenant-queue-full"
            else:
                self._pending[spec.tenant] += 1
        if shed_reason == "closed":
            self._shed(spec, shed_reason)
            raise ServiceClosedError(
                f"service is draining; request {spec.name!r} rejected"
            )
        if shed_reason is not None:
            self._shed(spec, shed_reason)
            raise ServiceOverloadError(
                f"tenant {spec.tenant!r} already has "
                f"{tenant.max_pending} requests pending",
                tenant=spec.tenant,
                scope="tenant",
            )
        future: "Future[RequestOutcome]" = Future()
        try:
            self._queue.put_nowait((spec, future))
        except queue.Full:
            with self._state_lock:
                self._pending[spec.tenant] -= 1
            self._shed(spec, "queue-full")
            raise ServiceOverloadError(
                f"service queue is full ({self.config.queue_bound}); "
                f"request {spec.name!r} rejected",
                tenant=spec.tenant,
                scope="global",
            ) from None
        self.metrics.counter("service_submitted").inc()
        return future

    def drain(self) -> CacheStats:
        """Graceful shutdown: stop admitting, finish everything queued,
        stop the workers, and fold the cache's final counters into the
        metrics registry. Idempotent; returns the final cache stats."""
        # Check-and-set under the lock so exactly one caller posts the
        # worker sentinels (two racing drains used to both enqueue N
        # Nones, leaving stale sentinels in the queue); the blocking
        # puts and joins run after release. Every caller joins, so a
        # second drain also returns only once the pool has stopped.
        with self._state_lock:
            self._closed = True
            first_drain = not self._drained
            self._drained = True
        if first_drain:
            for _ in self._workers:
                self._queue.put(None)
        for worker in self._workers:
            worker.join()
        stats = self.cache.stats()
        gauge = self.metrics.gauge
        gauge("service_cache_resident_blocks").set(stats.resident_blocks)
        gauge("service_cache_resident_copies").set(stats.resident_copies)
        gauge("service_cache_disk_reads").set(stats.disk_reads)
        counter = self.metrics.counter("service_cache_evictions")
        counter.inc(stats.evictions - counter.snapshot())
        hit_ratio = stats.hit_ratio
        if hit_ratio is not None:
            gauge("service_cache_hit_ratio").set(hit_ratio)
        return stats

    def summary(self) -> dict[str, object]:
        """A JSON-ready operational summary (latency percentiles, hit
        ratio, sheds). Most useful after :meth:`drain`."""
        stats = self.cache.stats()
        latency = self.metrics.histogram("service_latency")
        shed = self.metrics.labeled_counter("service_shed")
        return {
            "store": self.store.spec.family,
            "requests_completed": self.metrics.counter(
                "service_completed"
            ).snapshot(),
            "requests_errored": self.metrics.counter(
                "service_errors"
            ).snapshot(),
            "shed": dict(sorted(shed.snapshot().items())),
            "cache": {
                "accesses": stats.accesses,
                "hits": stats.hits,
                "misses": stats.misses,
                "coalesced": stats.coalesced,
                "disk_reads": stats.disk_reads,
                "evictions": stats.evictions,
                "hit_ratio": stats.hit_ratio,
            },
            "latency": latency.percentiles((50.0, 90.0, 99.0)),
            "steps": self.metrics.histogram("service_steps").percentiles(
                (50.0, 90.0, 99.0)
            ),
        }

    # -- internals ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                spec, future = item
                self._serve(spec, future)
            finally:
                self._queue.task_done()

    def _serve(self, spec: RequestSpec, future: "Future[RequestOutcome]") -> None:
        try:
            trace, facade = run_request(self.store, spec, self.cache)
        except TenantBudgetError as exc:
            self._shed(spec, "budget")
            self._finish_error(spec, exc, future)
            return
        except ReproError as exc:
            self._finish_error(spec, exc, future)
            return
        # Propagated to the submitter through the future, not swallowed:
        # a worker thread must never die and strand its queue slot.
        except BaseException as exc:  # lint: ignore[RL006] # pragma: no cover
            self.metrics.counter("service_errors").inc()
            future.set_exception(exc)
            self._release(spec)
            return
        assert facade is not None
        cfg = self.config
        latency = (
            trace.steps
            + cfg.read_cost * (facade.misses + facade.coalesced)
            + cfg.hit_cost * facade.hits
        )
        self.metrics.counter("service_completed").inc()
        self.metrics.labeled_counter("service_requests_by_tenant").inc(
            spec.tenant
        )
        self.metrics.counter("service_cache_hits").inc(facade.hits)
        self.metrics.counter("service_cache_misses").inc(facade.misses)
        self.metrics.counter("service_cache_coalesced").inc(facade.coalesced)
        self.metrics.histogram("service_latency").observe(latency)
        self.metrics.histogram("service_steps").observe(trace.steps)
        self.metrics.histogram("service_faults").observe(trace.faults)
        self._emit(
            ServiceRequestEvent(
                run=-1,
                tenant=spec.tenant,
                request=spec.name,
                workload=spec.workload,
                outcome="ok",
                steps=trace.steps,
                faults=trace.faults,
                hits=facade.hits,
                misses=facade.misses,
                coalesced=facade.coalesced,
                latency=latency,
            )
        )
        self._release(spec)
        future.set_result(
            RequestOutcome(
                spec=spec,
                steps=trace.steps,
                faults=trace.faults,
                hits=facade.hits,
                misses=facade.misses,
                coalesced=facade.coalesced,
                latency=latency,
            )
        )

    def _finish_error(
        self,
        spec: RequestSpec,
        exc: ReproError,
        future: "Future[RequestOutcome]",
    ) -> None:
        self.metrics.counter("service_errors").inc()
        self._emit(
            ServiceRequestEvent(
                run=-1,
                tenant=spec.tenant,
                request=spec.name,
                workload=spec.workload,
                outcome=f"error:{type(exc).__name__}",
                steps=0,
                faults=0,
                hits=0,
                misses=0,
                coalesced=0,
                latency=0.0,
            )
        )
        self._release(spec)
        future.set_exception(exc)

    def _release(self, spec: RequestSpec) -> None:
        with self._state_lock:
            self._pending[spec.tenant] -= 1

    def _shed(self, spec: RequestSpec, reason: str) -> None:
        self.metrics.labeled_counter("service_shed").inc(reason)
        self._emit(
            ServiceShedEvent(
                run=-1, tenant=spec.tenant, request=spec.name, reason=reason
            )
        )

    def _emit(self, event: ServiceRequestEvent | ServiceShedEvent) -> None:
        if self._sink is None:
            return
        with self._sink_lock:
            self._sink.emit(event)

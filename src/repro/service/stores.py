"""Named blocked stores the service can serve searches against.

A *store* is a (graph, blocking, block-choice policy, model params)
bundle built once and shared read-only by every worker thread — the
"one shared blocked store" of the service. Families reuse the repo's
known-good constructions:

* ``path`` — a finite 1-D path with the contiguous s=1 blocking
  (the Lemma 19 substrate);
* ``tree`` — a complete binary tree with the Lemma 17 overlapped
  (s=2) blocking and the most-interior choice rule;
* ``regular`` — a random 4-regular graph with the Lemma 13
  neighborhood blocking and its nearest-center policy (Row 10).

:class:`StoreSpec` is primitive frozen data (the ``CellSpec`` idiom:
the family name indexes a registry, never a callable), so specs travel
through CLIs, load-generator configs, and benchmark rollups untouched.
Builders are memoized per process — two services over the same spec
share one graph and blocking.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, cast

from repro.blockings import (
    MostInteriorPolicy,
    lemma13_blocking,
    overlapped_tree_blocking,
)
from repro.core.blocking import Blocking, ExplicitBlocking
from repro.core.model import ModelParams
from repro.core.policies import BlockChoicePolicy, FirstBlockPolicy
from repro.errors import ServiceError
from repro.graphs import CompleteTree, FiniteGraph, path_graph, random_regular_graph
from repro.typing import Vertex


@dataclass(frozen=True)
class StoreSpec:
    """A buildable store, as primitive picklable data.

    ``size`` scales the substrate (path length, tree height, regular
    graph order — see the family builders); ``memory_blocks`` is the
    per-run private memory in blocks (the model's ``M / B``).
    """

    family: str = "path"
    block_size: int = 16
    memory_blocks: int = 2
    size: int = 1024
    seed: int = 7


@dataclass
class ServiceStore:
    """A built store: shared, read-only during serving."""

    spec: StoreSpec
    graph: FiniteGraph
    blocking: Blocking
    params: ModelParams
    policy_factory: Callable[[], BlockChoicePolicy]
    #: Every vertex in canonical (sorted) order — rank ``k`` in the load
    #: generator's Zipf distribution maps to ``vertices[k]``.
    vertices: tuple[Vertex, ...] = field(default_factory=tuple)


def _params(spec: StoreSpec) -> ModelParams:
    return ModelParams(spec.block_size, spec.memory_blocks * spec.block_size)


def _canonical_vertices(graph: FiniteGraph) -> tuple[Vertex, ...]:
    # ``Vertex`` is only ``Hashable`` to the checker; every concrete
    # substrate the families build uses orderable vertices.
    return tuple(sorted(cast(Iterable[Any], graph.vertices())))


def _build_path(spec: StoreSpec) -> ServiceStore:
    n = spec.size - spec.size % spec.block_size or spec.block_size
    graph = path_graph(n)
    blocking = ExplicitBlocking(
        spec.block_size,
        {
            i: set(range(i * spec.block_size, (i + 1) * spec.block_size))
            for i in range(n // spec.block_size)
        },
    )
    return ServiceStore(
        spec, graph, blocking, _params(spec), FirstBlockPolicy,
        _canonical_vertices(graph),
    )


def _build_tree(spec: StoreSpec) -> ServiceStore:
    # ``size`` is a vertex-count target; pick the smallest complete
    # binary tree at least that big.
    height = 1
    while 2 ** (height + 1) - 1 < spec.size:
        height += 1
    tree = CompleteTree(2, height)
    blocking = overlapped_tree_blocking(tree, spec.block_size)
    return ServiceStore(
        spec, tree, blocking, _params(spec), MostInteriorPolicy,
        _canonical_vertices(tree),
    )


def _build_regular(spec: StoreSpec) -> ServiceStore:
    graph = random_regular_graph(spec.size, 4, seed=spec.seed)
    blocking, policy = lemma13_blocking(graph, spec.block_size)
    # The nearest-center policy is stateless; hand the shared instance
    # out of the factory.
    return ServiceStore(
        spec, graph, blocking, _params(spec), lambda: policy,
        _canonical_vertices(graph),
    )


STORE_FAMILIES: Mapping[str, Callable[[StoreSpec], ServiceStore]] = {
    "path": _build_path,
    "tree": _build_tree,
    "regular": _build_regular,
}

_memo: dict[StoreSpec, ServiceStore] = {}
_memo_lock = threading.Lock()


def build_store(spec: StoreSpec) -> ServiceStore:
    """Build (or reuse) the store a spec describes."""
    builder = STORE_FAMILIES.get(spec.family)
    if builder is None:
        raise ServiceError(
            f"unknown store family {spec.family!r}; "
            f"known: {sorted(STORE_FAMILIES)}"
        )
    with _memo_lock:
        store = _memo.get(spec)
        if store is None:
            store = builder(spec)
            _memo[spec] = store
        return store

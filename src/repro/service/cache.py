"""The shared block cache: one resident block pool for many searches.

The paper's model gives every searcher a private memory of ``M`` vertex
copies; the service keeps that per-run model intact (each request still
plays the Section 2 game against a fresh
:class:`~repro.core.memory.WeakMemory`) and adds **one more level of
the hierarchy** behind it: a process-wide block cache shared by every
request and tenant. A per-run fault that misses the private memory no
longer always costs a disk read — if any other request recently pulled
the block, it is served from the shared pool. The governing statistic
shifts from per-run fault counts to the shared cache's *hit ratio*,
exactly the lens of the semi-external-BFS and hierarchy-layout lines of
work cited in PAPERS.md.

Three mechanisms live here, all under one lock:

* **Global LRU over block copies.** Residency is charged in vertex
  copies (``len(block)``, the same unit as the model's ``M``);
  ``capacity`` bounds the total and the least-recently-used block is
  evicted when a new one does not fit.
* **Per-tenant charging and budgets.** Every tenant that touches a
  block is *charged* its full size (a copy shared by two tenants costs
  both — admission is per-tenant, so one tenant cannot squat on
  capacity another paid for). A tenant over budget sheds its own
  least-recently-used charge; a block nobody charges any more leaves
  the cache. A single block larger than the tenant's whole budget can
  never be admitted — that raises the typed
  :class:`~repro.errors.TenantBudgetError` instead of thrashing.
* **Single-flight fault coalescing.** A miss installs an in-flight
  marker before releasing the lock to read; concurrent requests
  faulting on the same block wait on the marker and share the one read
  instead of issuing their own. ``stats().coalesced`` counts the waits
  that were spared a disk read.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.core.block import Block
from repro.core.blocking import Blocking
from repro.errors import ServiceError, TenantBudgetError
from repro.typing import BlockId, Vertex

#: Outcomes of one :meth:`SharedBlockCache.fetch`.
HIT = "hit"
MISS = "miss"
COALESCED = "coalesced"


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of the shared cache's counters.

    ``accesses = hits + misses + coalesced``; ``disk_reads == misses``
    (every non-coalesced miss costs exactly one loader call).
    """

    accesses: int
    hits: int
    misses: int
    coalesced: int
    disk_reads: int
    evictions: int
    resident_blocks: int
    resident_copies: int

    @property
    def hit_ratio(self) -> float | None:
        """Hits per access, counting coalesced waits as hits (they cost
        no disk read); ``None`` before any access."""
        if self.accesses == 0:
            return None
        return (self.hits + self.coalesced) / self.accesses


class SharedBlockCache:
    """A thread-safe LRU block cache with tenant budgets and
    single-flight coalescing. See the module docstring for semantics."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1 copy, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        # Insertion order doubles as the global LRU order (refreshed by
        # delete + reinsert); dicts-as-ordered-sets keep per-tenant and
        # per-block charge books in use order without hash-order leaks.
        self._resident: dict[BlockId, Block] = {}
        self._chargers: dict[BlockId, dict[str, None]] = {}
        self._tenant_blocks: dict[str, dict[BlockId, None]] = {}
        self._tenant_used: dict[str, int] = {}
        self._budgets: dict[str, int] = {}
        self._inflight: dict[BlockId, threading.Event] = {}
        self._used = 0
        self._hits = 0
        self._misses = 0
        self._coalesced = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def register_tenant(self, tenant: str, budget: int) -> None:
        """Declare a tenant and its cache budget (in vertex copies)."""
        if budget < 1:
            raise ServiceError(
                f"tenant {tenant!r} budget must be >= 1 copy, got {budget}"
            )
        with self._lock:
            self._budgets[tenant] = budget
            self._tenant_blocks.setdefault(tenant, {})
            self._tenant_used.setdefault(tenant, 0)

    def fetch(
        self, block_id: BlockId, tenant: str, loader: Callable[[], Block]
    ) -> tuple[Block, str]:
        """The block, plus how it was obtained (hit/miss/coalesced).

        On a miss this thread performs the read itself (outside the
        lock); concurrent fetches of the same block wait on the
        in-flight marker and re-check residency — they never issue a
        second read unless the block was evicted again in between.
        """
        waited = False
        while True:
            with self._lock:
                if tenant not in self._budgets:
                    raise ServiceError(f"unknown tenant {tenant!r}")
                block = self._resident.get(block_id)
                if block is not None:
                    self._touch(block_id, tenant, block)
                    if waited:
                        self._coalesced += 1
                        return block, COALESCED
                    self._hits += 1
                    return block, HIT
                marker = self._inflight.get(block_id)
                if marker is None:
                    marker = threading.Event()
                    self._inflight[block_id] = marker
                    loading = True
                else:
                    loading = False
            if not loading:
                marker.wait()
                waited = True
                continue
            try:
                block = loader()
            except BaseException:
                with self._lock:
                    del self._inflight[block_id]
                marker.set()
                raise
            with self._lock:
                try:
                    self._misses += 1
                    self._admit(block_id, tenant, block)
                finally:
                    del self._inflight[block_id]
                    marker.set()
            return block, MISS

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                accesses=self._hits + self._misses + self._coalesced,
                hits=self._hits,
                misses=self._misses,
                coalesced=self._coalesced,
                disk_reads=self._misses,
                evictions=self._evictions,
                resident_blocks=len(self._resident),
                resident_copies=self._used,
            )

    # -- internals (caller holds the lock) --------------------------------

    def _touch(self, block_id: BlockId, tenant: str, block: Block) -> None:
        """Refresh global and tenant LRU orders; charge the tenant if
        this is its first touch of the block."""
        del self._resident[block_id]
        self._resident[block_id] = block
        charged = self._chargers.setdefault(block_id, {})
        mine = self._tenant_blocks[tenant]
        if tenant not in charged:
            self._charge(block_id, tenant, len(block), protect=block_id)
        else:
            del mine[block_id]
            mine[block_id] = None

    def _admit(self, block_id: BlockId, tenant: str, block: Block) -> None:
        size = len(block)
        if size > self._capacity:
            raise ServiceError(
                f"block {block_id!r} holds {size} copies, more than the "
                f"whole cache capacity {self._capacity}"
            )
        self._resident[block_id] = block
        self._used += size
        self._chargers[block_id] = {}
        try:
            self._charge(block_id, tenant, size, protect=block_id)
        except TenantBudgetError:
            # Nobody pays for the block, so it does not stay resident.
            self._evict(block_id)
            raise
        while self._used > self._capacity:
            victim = self._lru_victim(exclude=block_id)
            if victim is None:
                break
            self._evict(victim)

    def _charge(
        self, block_id: BlockId, tenant: str, size: int, protect: BlockId
    ) -> None:
        budget = self._budgets[tenant]
        if size > budget:
            raise TenantBudgetError(
                f"block {block_id!r} holds {size} copies but tenant "
                f"{tenant!r} has a budget of {budget}; it can never be "
                f"admitted",
                tenant=tenant,
            )
        self._chargers[block_id][tenant] = None
        mine = self._tenant_blocks[tenant]
        mine[block_id] = None
        self._tenant_used[tenant] += size
        while self._tenant_used[tenant] > budget:
            victim = next((bid for bid in mine if bid != protect), None)
            if victim is None:
                break
            self._discharge(victim, tenant)

    def _discharge(self, block_id: BlockId, tenant: str) -> None:
        """Drop one tenant's charge; evict the block entirely once no
        tenant is paying for it."""
        del self._tenant_blocks[tenant][block_id]
        self._tenant_used[tenant] -= len(self._resident[block_id])
        chargers = self._chargers[block_id]
        del chargers[tenant]
        if not chargers:
            self._evict(block_id)

    def _evict(self, block_id: BlockId) -> None:
        block = self._resident.pop(block_id)
        size = len(block)
        self._used -= size
        for tenant in list(self._chargers.pop(block_id, {})):
            del self._tenant_blocks[tenant][block_id]
            self._tenant_used[tenant] -= size
        self._evictions += 1

    def _lru_victim(self, exclude: BlockId) -> BlockId | None:
        return next((bid for bid in self._resident if bid != exclude), None)


class CachedBlocking(Blocking):
    """A :class:`~repro.core.blocking.Blocking` façade routing block
    reads through a :class:`SharedBlockCache` on behalf of one tenant.

    One instance per request: the engine needs no changes (``_fault``
    already calls ``blocking.block``), and the per-instance counters
    give the request's own hit/miss/coalesced tally for latency
    accounting and the per-request trace event.
    """

    def __init__(
        self, inner: Blocking, cache: SharedBlockCache, tenant: str
    ) -> None:
        self._inner = inner
        self._cache = cache
        self._tenant = tenant
        self.hits = 0
        self.misses = 0
        self.coalesced = 0

    @property
    def block_size(self) -> int:
        return self._inner.block_size

    def blocks_for(self, vertex: Vertex) -> tuple[BlockId, ...]:
        return self._inner.blocks_for(vertex)

    def block(self, block_id: BlockId) -> Block:
        block, outcome = self._cache.fetch(
            block_id, self._tenant, lambda: self._inner.block(block_id)
        )
        if outcome == HIT:
            self.hits += 1
        elif outcome == MISS:
            self.misses += 1
        else:
            self.coalesced += 1
        return block

    def storage_blowup(self) -> float:
        return self._inner.storage_blowup()

    def __getattr__(self, name: str) -> object:
        # Construction-specific extras (``interior_distance``, stratum
        # queries, ...) pass through to the wrapped blocking so choice
        # policies written against a concrete blocking keep working.
        return getattr(self._inner, name)

"""Served requests: the ``CellSpec``/``run_cell`` unit, per client call.

A :class:`RequestSpec` is the service's wire unit — primitive frozen
data naming a *workload* registry entry (never a callable), exactly the
shape PR 4 gave sweep cells. ``run_request`` is the single execution
path every worker thread uses: build the workload's adversary (or
path), wrap the store's blocking in a per-tenant
:class:`~repro.service.cache.CachedBlocking`, and play the Section 2
game with a fresh private memory. The request's engine run is the
paper's model untouched; only the disk behind it is shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.adversaries import GreedyUncoveredAdversary, RandomWalkAdversary
from repro.core.engine import Searcher
from repro.core.stats import SearchTrace
from repro.errors import ServiceError
from repro.service.cache import CachedBlocking, SharedBlockCache
from repro.service.stores import ServiceStore


@dataclass(frozen=True)
class RequestSpec:
    """One client search request, as primitive picklable data.

    ``start_rank`` indexes the store's canonical vertex order (the load
    generator draws it Zipfian — rank 0 is the hottest start);
    ``workload`` names an entry in :data:`WORKLOADS`.
    """

    name: str
    tenant: str
    workload: str = "walk"
    start_rank: int = 0
    num_steps: int = 256
    seed: int = 0


def _walk(store: ServiceStore, spec: RequestSpec, searcher: Searcher) -> SearchTrace:
    start = store.vertices[spec.start_rank % len(store.vertices)]
    adversary = RandomWalkAdversary(store.graph, start, seed=spec.seed)
    return searcher.run_adversary(adversary, spec.num_steps)


def _greedy(store: ServiceStore, spec: RequestSpec, searcher: Searcher) -> SearchTrace:
    start = store.vertices[spec.start_rank % len(store.vertices)]
    adversary = GreedyUncoveredAdversary(store.graph, start)
    return searcher.run_adversary(adversary, spec.num_steps)


WORKLOADS: Mapping[
    str, Callable[[ServiceStore, RequestSpec, Searcher], SearchTrace]
] = {
    "walk": _walk,
    "greedy": _greedy,
}


def run_request(
    store: ServiceStore,
    spec: RequestSpec,
    cache: SharedBlockCache | None = None,
) -> tuple[SearchTrace, CachedBlocking | None]:
    """Execute one request against the store.

    With a ``cache``, block reads go through a per-request
    :class:`CachedBlocking` (returned so the caller can read the
    request's own hit/miss/coalesced tally); without one the request
    runs isolated — every fault is a disk read, the N-serial-runs
    baseline the acceptance test compares against.
    """
    workload = WORKLOADS.get(spec.workload)
    if workload is None:
        raise ServiceError(
            f"unknown workload {spec.workload!r}; known: {sorted(WORKLOADS)}"
        )
    facade: CachedBlocking | None = None
    blocking = store.blocking
    if cache is not None:
        facade = CachedBlocking(blocking, cache, spec.tenant)
        blocking = facade
    searcher = Searcher(
        store.graph,
        blocking,
        store.policy_factory(),
        store.params,
        validate_moves=False,
        instrumentation=None,
    )
    trace = workload(store, spec, searcher)
    return trace, facade

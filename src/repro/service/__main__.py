"""``python -m repro.service`` — run a seeded load burst.

Builds a store, starts the service, drives a generated burst through
it (closed lockstep / closed threaded / open loop), drains, and prints
a JSON summary. ``--metrics-out`` writes the merged metrics snapshot
(byte-identical across re-runs in ``--mode closed`` — the CI smoke
diffs two of them); ``--trace-out`` writes the service's typed event
stream as JSONL, footer included.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.cache import atomic_write_text
from repro.errors import ReproError
from repro.experiments.loadgen import (
    LoadSpec,
    closed_loop,
    closed_loop_threaded,
    isolated_block_reads,
    open_loop,
)
from repro.obs.events import TraceFooterEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import JsonlSink
from repro.service.server import SearchService, ServiceConfig, TenantConfig
from repro.service.stores import STORE_FAMILIES, StoreSpec, build_store


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a seeded search-request burst from one shared "
        "blocked store.",
    )
    store = parser.add_argument_group("store")
    store.add_argument(
        "--store", default="path", choices=sorted(STORE_FAMILIES),
        help="store family (default: path)",
    )
    store.add_argument("--block-size", type=int, default=16, metavar="B")
    store.add_argument(
        "--memory-blocks", type=int, default=2, metavar="N",
        help="per-run private memory, in blocks (default: 2)",
    )
    store.add_argument(
        "--size", type=int, default=1024, metavar="N",
        help="substrate scale: path length / tree vertex target / "
        "regular-graph order (default: 1024)",
    )
    store.add_argument("--store-seed", type=int, default=7, metavar="SEED")

    service = parser.add_argument_group("service")
    service.add_argument("--workers", type=int, default=2, metavar="N")
    service.add_argument("--queue-bound", type=int, default=32, metavar="N")
    service.add_argument(
        "--cache-blocks", type=int, default=8, metavar="N",
        help="shared cache capacity, in blocks (default: 8)",
    )
    service.add_argument("--read-cost", type=float, default=10.0, metavar="C")
    service.add_argument(
        "--tenants", default="alpha,beta", metavar="NAMES",
        help="comma-separated tenant names (default: alpha,beta)",
    )
    service.add_argument(
        "--tenant-cache-blocks", type=int, default=4, metavar="N",
        help="each tenant's cache budget, in blocks (default: 4)",
    )
    service.add_argument(
        "--max-pending", type=int, default=8, metavar="N",
        help="per-tenant pending-request bound (default: 8)",
    )

    load = parser.add_argument_group("load")
    load.add_argument("--clients", type=int, default=4, metavar="N")
    load.add_argument(
        "--requests", type=int, default=8, metavar="N",
        help="requests per client (default: 8)",
    )
    load.add_argument("--steps", type=int, default=256, metavar="N")
    load.add_argument("--workload", default="walk", choices=("walk", "greedy"))
    load.add_argument("--zipf", type=float, default=1.1, metavar="S")
    load.add_argument("--zipf-ranks", type=int, default=64, metavar="N")
    load.add_argument("--seed", type=int, default=0, metavar="SEED")
    load.add_argument(
        "--mode", default="closed",
        choices=("closed", "closed-threaded", "open"),
        help="closed = deterministic lockstep (default); closed-threaded = "
        "one thread per client; open = submit-all, collect sheds",
    )

    out = parser.add_argument_group("output")
    out.add_argument(
        "--compare-isolated", action="store_true",
        help="also run every stream serially without the shared cache "
        "and report the disk reads saved by sharing",
    )
    out.add_argument("--metrics-out", metavar="PATH")
    out.add_argument("--trace-out", metavar="PATH")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    store = build_store(
        StoreSpec(
            family=args.store,
            block_size=args.block_size,
            memory_blocks=args.memory_blocks,
            size=args.size,
            seed=args.store_seed,
        )
    )
    tenant_names = tuple(
        name.strip() for name in args.tenants.split(",") if name.strip()
    )
    sink = JsonlSink(args.trace_out) if args.trace_out else None
    metrics = MetricsRegistry()
    service = SearchService(
        store,
        [
            TenantConfig(
                name,
                cache_blocks=args.tenant_cache_blocks,
                max_pending=args.max_pending,
            )
            for name in tenant_names
        ],
        ServiceConfig(
            workers=args.workers,
            queue_bound=args.queue_bound,
            cache_blocks=args.cache_blocks,
            read_cost=args.read_cost,
        ),
        metrics=metrics,
        sink=sink,
    )
    load = LoadSpec(
        clients=args.clients,
        requests_per_client=args.requests,
        num_steps=args.steps,
        workload=args.workload,
        tenants=tenant_names,
        zipf_s=args.zipf,
        zipf_ranks=args.zipf_ranks,
        seed=args.seed,
    )
    shed_count = 0
    try:
        if args.mode == "closed":
            closed_loop(service, load)
        elif args.mode == "closed-threaded":
            closed_loop_threaded(service, load)
        else:
            _, sheds = open_loop(service, load)
            shed_count = len(sheds)
    finally:
        service.drain()
        if sink is not None:
            sink.emit(
                TraceFooterEvent(run=-1, events_emitted=sink.events_written)
            )
            sink.close()
    summary = service.summary()
    summary["mode"] = args.mode
    summary["shed_total"] = shed_count
    if args.compare_isolated:
        isolated = isolated_block_reads(load, store)
        shared = service.cache.stats().disk_reads
        summary["isolated_block_reads"] = isolated
        summary["shared_disk_reads"] = shared
        summary["reads_saved"] = isolated - shared
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.metrics_out:
        atomic_write_text(
            args.metrics_out,
            json.dumps(metrics.snapshot(), indent=2, sort_keys=True) + "\n",
        )
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        sys.exit(2)

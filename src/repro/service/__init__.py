"""Blocking-as-a-service: a concurrent search server over one store.

The ROADMAP's north star is the paper's blocked store serving heavy
traffic. This package is that serving stack in miniature, stdlib-only:

* :mod:`repro.service.stores` — named (graph, blocking, policy,
  params) bundles built once and shared read-only;
* :mod:`repro.service.cache` — the shared block cache: global LRU,
  per-tenant admission/eviction budgets, single-flight fault
  coalescing;
* :mod:`repro.service.requests` — the served unit (a ``CellSpec``-style
  frozen spec naming a workload registry entry) and its single
  execution path;
* :mod:`repro.service.server` — the thread pool, bounded queues with
  typed backpressure, graceful drain, and ``repro.obs`` wiring
  (latency/hit-ratio metrics, service trace events).

Run a seeded load burst from the command line::

    python -m repro.service --store path --clients 4 --requests 8
"""

from repro.service.cache import (
    COALESCED,
    HIT,
    MISS,
    CachedBlocking,
    CacheStats,
    SharedBlockCache,
)
from repro.service.requests import WORKLOADS, RequestSpec, run_request
from repro.service.server import (
    RequestOutcome,
    SearchService,
    ServiceConfig,
    TenantConfig,
)
from repro.service.stores import (
    STORE_FAMILIES,
    ServiceStore,
    StoreSpec,
    build_store,
)

__all__ = [
    "COALESCED",
    "HIT",
    "MISS",
    "CachedBlocking",
    "CacheStats",
    "RequestOutcome",
    "RequestSpec",
    "STORE_FAMILIES",
    "SearchService",
    "ServiceConfig",
    "ServiceStore",
    "SharedBlockCache",
    "StoreSpec",
    "TenantConfig",
    "WORKLOADS",
    "build_store",
    "run_request",
]

"""Blocking for external graph searching.

A faithful, executable reproduction of M. H. Nodine, M. T. Goodrich,
and J. S. Vitter, "Blocking for External Graph Searching" (PODS 1993;
Algorithmica 16:181-214, 1996): redundant disk blockings, weak/strong
paging models, the paper's blocking constructions, and the adversarial
walks behind its upper bounds — plus an experiment harness regenerating
every row of the paper's Table 1.

Quickstart::

    from repro import GridGraph, ModelParams, Searcher
    from repro.blockings import OffsetGridBlocking
    from repro.blockings.policies import MostInteriorGridPolicy
    from repro.adversaries import GridCorridorAdversary

    grid = GridGraph((256, 256))
    params = ModelParams(block_size=64, memory_size=128)
    blocking = OffsetGridBlocking(dim=2, block_size=64, copies=2)
    searcher = Searcher(grid, blocking, MostInteriorGridPolicy(), params)
    trace = searcher.run_adversary(
        GridCorridorAdversary(dim=2, block_size=64), num_steps=20_000
    )
    print(trace.speedup)   # ~ sqrt(B)/4 or better, per Lemma 22
"""

from repro.core import (
    Adversary,
    Block,
    BlockChoicePolicy,
    Blocking,
    ExplicitBlocking,
    FirstBlockPolicy,
    ImplicitBlocking,
    LargestBlockPolicy,
    Memory,
    MemoryView,
    ModelParams,
    MostUncoveredPolicy,
    PagingModel,
    SearchTrace,
    Searcher,
    StrongMemory,
    WeakMemory,
    make_memory,
    simulate_adversary,
    simulate_path,
)
from repro.errors import (
    AdversaryError,
    AnalysisError,
    BlockingError,
    BlockReadError,
    BudgetExceededError,
    GraphError,
    ModelError,
    PagingError,
    ReproError,
)
from repro.reliability import ReliabilityConfig
from repro.obs import (
    Instrumentation,
    JsonlSink,
    MetricsRegistry,
    PhaseProfiler,
    RingBufferSink,
    use_instrumentation,
)
from repro.graphs import (
    AdjacencyGraph,
    CompleteTree,
    DiagonalGridGraph,
    FiniteGraph,
    Graph,
    GridGraph,
    InfiniteDiagonalGridGraph,
    InfiniteGridGraph,
)

__version__ = "1.0.0"

__all__ = [
    "Adversary",
    "AdversaryError",
    "AdjacencyGraph",
    "AnalysisError",
    "Block",
    "BlockChoicePolicy",
    "Blocking",
    "BlockingError",
    "BlockReadError",
    "BudgetExceededError",
    "CompleteTree",
    "DiagonalGridGraph",
    "ExplicitBlocking",
    "FiniteGraph",
    "FirstBlockPolicy",
    "Graph",
    "GraphError",
    "GridGraph",
    "ImplicitBlocking",
    "InfiniteDiagonalGridGraph",
    "InfiniteGridGraph",
    "Instrumentation",
    "JsonlSink",
    "LargestBlockPolicy",
    "Memory",
    "MemoryView",
    "MetricsRegistry",
    "ModelError",
    "ModelParams",
    "MostUncoveredPolicy",
    "PagingError",
    "PagingModel",
    "PhaseProfiler",
    "ReliabilityConfig",
    "RingBufferSink",
    "ReproError",
    "SearchTrace",
    "Searcher",
    "StrongMemory",
    "WeakMemory",
    "make_memory",
    "simulate_adversary",
    "simulate_path",
    "use_instrumentation",
]

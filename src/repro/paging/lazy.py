"""Theorem 1: lazy on-line weak pagers are optimal.

The paper proves that any weak-model paging schedule can be rewritten,
read by read, into a *lazy* schedule (reads happen only in response to
page faults) without increasing the number of block reads. This module
implements that rewriting as an executable transformation on explicit
schedules, so the theorem can be checked empirically on arbitrary
(including randomly generated) schedules.

A schedule is a list of :class:`Op` — ``READ bid`` or ``FLUSH bid`` —
each tagged with the path position *before* which it executes. A
schedule is *valid* for a path if memory capacity is never exceeded and
every visited vertex is covered when visited.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.blocking import Blocking
from repro.errors import PagingError
from repro.typing import BlockId, Vertex


class OpKind(enum.Enum):
    READ = "read"
    FLUSH = "flush"


@dataclass(frozen=True)
class Op:
    """One memory operation, executed before visiting ``path[position]``.

    Operations at the same position execute in list order.
    """

    position: int
    kind: OpKind
    block_id: BlockId


def read(position: int, block_id: BlockId) -> Op:
    return Op(position, OpKind.READ, block_id)


def flush(position: int, block_id: BlockId) -> Op:
    return Op(position, OpKind.FLUSH, block_id)


def _sorted_ops(schedule: Sequence[Op]) -> list[Op]:
    """Stable sort by position (preserving same-position order)."""
    return sorted(schedule, key=lambda op: op.position)


def validate_schedule(
    path: Sequence[Vertex],
    blocking: Blocking,
    memory_size: int,
    schedule: Sequence[Op],
) -> int:
    """Check a schedule services the whole path within capacity.

    Returns the number of READ operations. Raises
    :class:`~repro.errors.PagingError` on a capacity overflow, a flush
    of a non-resident block, or an uncovered visit.
    """
    ops = _sorted_ops(schedule)
    resident: dict[BlockId, int] = {}
    covered: dict[Vertex, int] = {}
    occupancy = 0
    reads = 0
    op_index = 0
    for position, vertex in enumerate(path):
        while op_index < len(ops) and ops[op_index].position <= position:
            op = ops[op_index]
            op_index += 1
            block = blocking.block(op.block_id)
            if op.kind is OpKind.READ:
                reads += 1
                resident[op.block_id] = resident.get(op.block_id, 0) + 1
                occupancy += len(block)
                if occupancy > memory_size:
                    raise PagingError(
                        f"capacity exceeded at position {position}: "
                        f"{occupancy} > {memory_size}"
                    )
                for v in block:
                    covered[v] = covered.get(v, 0) + 1
            else:
                if resident.get(op.block_id, 0) == 0:
                    raise PagingError(
                        f"flush of non-resident block {op.block_id!r} at "
                        f"position {position}"
                    )
                resident[op.block_id] -= 1
                occupancy -= len(block)
                for v in block:
                    covered[v] -= 1
        if covered.get(vertex, 0) <= 0:
            raise PagingError(f"uncovered visit to {vertex!r} at position {position}")
    return reads


def _first_uncovered_visit(
    path: Sequence[Vertex], blocking: Blocking, ops: Sequence[Op]
) -> int | None:
    """First path position whose visit is uncovered under ``ops``.

    Tolerant simulation: coverage counts may go negative (used on
    schedules with a read removed but its flush retained)."""
    covered: dict[Vertex, int] = {}
    op_index = 0
    for position, vertex in enumerate(path):
        while op_index < len(ops) and ops[op_index].position <= position:
            op = ops[op_index]
            op_index += 1
            sign = 1 if op.kind is OpKind.READ else -1
            for v in blocking.block(op.block_id):
                covered[v] = covered.get(v, 0) + sign
        if covered.get(vertex, 0) <= 0:
            return position
    return None


def lazify(
    path: Sequence[Vertex],
    blocking: Blocking,
    memory_size: int,
    schedule: Sequence[Op],
) -> list[Op]:
    """Apply Theorem 1's rewriting until the schedule is lazy.

    Repeatedly finds a READ that does not service a fault at its own
    position and either deletes it (with its matching flush) when the
    block is never used before being flushed, or postpones it to the
    first position at which the block is used. The result is a valid
    schedule with no more reads than the input, in which every read
    happens at a position where the visited vertex was uncovered.
    """
    ops = _sorted_ops(schedule)
    for _ in range(10 * len(ops) * (len(path) + 1) + 10):
        victim = _find_non_fault_read(path, blocking, ops)
        if victim is None:
            validate_schedule(path, blocking, memory_size, ops)
            return ops
        ops = _rewrite_one(path, blocking, ops, victim)
    raise PagingError("lazify failed to converge (schedule pathology)")


def _find_non_fault_read(
    path: Sequence[Vertex], blocking: Blocking, ops: list[Op]
) -> int | None:
    """Index of the first READ whose position's visit was already
    covered without it (i.e. not fault-prompted), else ``None``.

    A read is fault-prompted iff, at the moment it executes, the vertex
    about to be visited at its position is uncovered and the read's
    block contains it.
    """
    covered: dict[Vertex, int] = {}
    op_index = 0
    for position, vertex in enumerate(path):
        while op_index < len(ops) and ops[op_index].position <= position:
            op = ops[op_index]
            block = blocking.block(op.block_id)
            if op.kind is OpKind.READ:
                needed = covered.get(vertex, 0) <= 0 and vertex in block
                # A read placed at an earlier position than any remaining
                # visit it could serve is non-fault-prompted if the visit
                # at its own position is already covered or not in block.
                if op.position == position and needed:
                    pass  # fault-prompted: keep
                else:
                    return op_index
                for v in block:
                    covered[v] = covered.get(v, 0) + 1
            else:
                for v in block:
                    covered[v] = covered.get(v, 0) - 1
            op_index += 1
    # Any trailing ops after the final position are trivially not
    # fault-prompted reads.
    while op_index < len(ops):
        if ops[op_index].kind is OpKind.READ:
            return op_index
        op_index += 1
    return None


def _rewrite_one(
    path: Sequence[Vertex], blocking: Blocking, ops: list[Op], victim: int
) -> list[Op]:
    """One step of the Theorem 1 rewriting applied to ``ops[victim]``.

    Remove the read and see where the first uncovered visit appears:
    nowhere before the read's matching flush means the read was never
    needed (delete the read/flush pair); otherwise the read moves to
    exactly that position, where it *is* fault-prompted. Either way the
    read count never grows and progress is strictly monotone (the
    failure position is strictly after the old read position, because
    the read was not fault-prompted where it stood).
    """
    op = ops[victim]
    # Find the matching flush: the first FLUSH of this block id after the
    # victim that is not claimed by an intervening read of the same block.
    depth = 0
    flush_index = None
    for i in range(victim + 1, len(ops)):
        other = ops[i]
        if other.block_id != op.block_id:
            continue
        if other.kind is OpKind.READ:
            depth += 1
        else:
            if depth == 0:
                flush_index = i
                break
            depth -= 1
    flush_position = ops[flush_index].position if flush_index is not None else len(path)
    without_read = ops[:victim] + ops[victim + 1 :]
    needed_at = _first_uncovered_visit(path, blocking, without_read)
    if needed_at is None or needed_at >= flush_position:
        # Never needed while resident: delete the read and its flush.
        doomed = {victim} if flush_index is None else {victim, flush_index}
        return [o for i, o in enumerate(ops) if i not in doomed]
    # Postpone the read to where it is first needed. Insert after every
    # op at a position <= needed_at: same-position flushes run first,
    # keeping peak occupancy minimal; the matching flush sits strictly
    # later (needed_at < flush_position).
    moved = replace(op, position=needed_at)
    insert_at = len(without_read)
    for i, other in enumerate(without_read):
        if other.position > needed_at:
            insert_at = i
            break
    return without_read[:insert_at] + [moved] + without_read[insert_at:]


def count_reads(schedule: Sequence[Op]) -> int:
    """Number of READ operations in a schedule."""
    return sum(1 for op in schedule if op.kind is OpKind.READ)


def is_lazy(
    path: Sequence[Vertex], blocking: Blocking, schedule: Sequence[Op]
) -> bool:
    """Whether every read in the schedule is fault-prompted."""
    return _find_non_fault_read(path, blocking, _sorted_ops(schedule)) is None


def schedule_from_trace(
    path: Sequence[Vertex], blocking: Blocking, trace
) -> list[Op]:
    """Reconstruct an explicit schedule from an engine trace.

    The engine is lazy and reads exactly ``trace.block_reads`` in
    order, one per fault; this function re-derives the fault positions
    by replaying coverage, yielding an :class:`Op` list that
    :func:`validate_schedule` and :func:`is_lazy` accept.

    Evictions are omitted, so the reconstruction is exact only for runs
    where nothing was evicted (memory held every block read — e.g.
    ``M >= faults * B``); with eviction, a re-read of an evicted block
    would desynchronize the replay, which is detected and reported.
    """
    ops: list[Op] = []
    covered: dict[Vertex, int] = {}
    reads = iter(trace.block_reads)
    for position, vertex in enumerate(path):
        if covered.get(vertex, 0) > 0:
            continue
        try:
            bid = next(reads)
        except StopIteration:
            raise PagingError(
                f"trace has too few reads: uncovered visit at {position}"
            ) from None
        ops.append(read(position, bid))
        for v in blocking.block(bid):
            covered[v] = covered.get(v, 0) + 1
        if covered.get(vertex, 0) <= 0:
            raise PagingError(
                f"trace read {bid!r} does not cover the fault at {position}"
            )
    return ops

"""The randomized marking algorithm (related work: Borodin et al. [4]).

The paper situates itself next to competitive paging (Borodin, Irani,
Raghavan, Schieber — access-graph paging with ``B = 1``) and closes by
asking what competitive analysis would say about blocking (question 8).
The classical randomized *marking* algorithm is the canonical
competitive pager — ``2 H_k``-competitive against oblivious
adversaries, vs LRU's ``k`` — so the library ships it as a third
eviction discipline next to LRU and Belady MIN, letting the Q8
benchmarks compare all three on the same traces.

Mechanics (weak model): a block is *marked* while it has been used —
loaded or touched by the pathfront — since the current phase began. On
a fault with memory full, a uniformly random unmarked block is evicted;
when every resident block is marked, a new phase begins and all marks
clear. Marks are derived from the memory's use-clock, so pathfront
touches (which the engine already reports to memory) count as uses
without extra plumbing.
"""

from __future__ import annotations

import random

from repro.core.block import Block
from repro.core.memory import Memory, WeakMemory
from repro.errors import PagingError
from repro.paging.eviction import EvictionPolicy
from repro.typing import BlockId


class MarkingEviction(EvictionPolicy):
    """Randomized marking eviction for the weak memory model.

    Stateful across one search (the phase-start clock); seeded for
    reproducibility.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)
        self._phase_start = 0

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._phase_start = 0

    def make_room(self, memory: Memory, incoming: Block) -> None:
        if not isinstance(memory, WeakMemory):
            raise PagingError("MarkingEviction requires the weak model")
        while not memory.room_for(len(incoming)):
            resident = memory.resident_blocks()
            if not resident:
                raise PagingError(
                    f"block of {len(incoming)} copies cannot fit in "
                    f"M={memory.capacity}"
                )
            unmarked = sorted(
                (
                    bid
                    for bid in resident
                    if memory.last_used(bid) < self._phase_start
                ),
                key=repr,  # stable order for the seeded rng
            )
            if not unmarked:
                # Every resident block was used this phase: start a new
                # phase — everything becomes unmarked.
                self._phase_start = memory.clock + 1
                continue
            memory.evict_block(self._rng.choice(unmarked))

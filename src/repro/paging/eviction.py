"""Eviction policies: how memory makes room for an incoming block.

The model (Section 2, item 5) says that once memory is full, ``B``
elements must be flushed to admit a new block — whole resident blocks
in the weak model, arbitrary copies in the strong model. The paper's
algorithm proofs use two disciplines, both provided here:

* "replacing whatever else is in the memory" (Lemmas 13, 17, Thm 4) —
  :class:`EvictAllPolicy`;
* "retain block ``B_{i-1}``" / keep the block being walked plus the new
  one (Lemmas 20, 22, 26) — exactly what :class:`LruEviction` does,
  since the engine touches a block every time the pathfront visits one
  of its resident vertices.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.core.block import Block
from repro.core.memory import Memory, StrongMemory, WeakMemory
from repro.core.model import ModelParams, PagingModel
from repro.errors import PagingError

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.obs
    from repro.obs.instrument import InstrumentationHook


class EvictionPolicy(abc.ABC):
    """Frees enough memory for ``incoming`` before it is loaded."""

    @abc.abstractmethod
    def make_room(self, memory: Memory, incoming: Block) -> None:
        """Evict until ``memory.room_for(len(incoming))`` holds."""

    def reset(self) -> None:
        """Clear any per-search state (default: stateless)."""


class EvictAllPolicy(EvictionPolicy):
    """Flush everything whenever anything must go.

    The paper's simplest discipline: its ``M = B``-style proofs
    "replace whatever else is in the memory". Works in both models.
    """

    def make_room(self, memory: Memory, incoming: Block) -> None:
        if memory.room_for(len(incoming)):
            return
        if isinstance(memory, WeakMemory):
            for block_id in memory.resident_blocks():
                memory.evict_block(block_id)
        elif isinstance(memory, StrongMemory):
            memory.evict_all()
        if not memory.room_for(len(incoming)):
            raise PagingError(
                f"block of {len(incoming)} copies cannot fit in M={memory.capacity}"
            )


class LruEviction(EvictionPolicy):
    """Weak model: flush least-recently-used blocks until the block fits.

    Because the engine touches a resident block whenever the pathfront
    stands on one of its vertices, LRU retains exactly the blocks the
    walk is using — the behaviour the grid and tree proofs rely on.
    """

    def make_room(self, memory: Memory, incoming: Block) -> None:
        if not isinstance(memory, WeakMemory):
            raise PagingError("LruEviction requires the weak (block-granular) model")
        size = len(incoming)
        while not memory.room_for(size):
            victim = memory.lru_block()
            if victim is None:
                raise PagingError(
                    f"block of {size} copies cannot fit in M={memory.capacity}"
                )
            memory.evict_block(victim)


class FifoCopiesEviction(EvictionPolicy):
    """Strong model: flush the oldest copies, one at a time, until fit.

    This is the discipline the strong model enables — freeing *partial*
    blocks — and is what distinguishes it from any weak-model policy.
    """

    def make_room(self, memory: Memory, incoming: Block) -> None:
        if not isinstance(memory, StrongMemory):
            raise PagingError(
                "FifoCopiesEviction requires the strong (copy-granular) model"
            )
        deficit = memory.occupancy + len(incoming) - memory.capacity
        if deficit > 0:
            if deficit > memory.occupancy:
                raise PagingError(
                    f"block of {len(incoming)} copies cannot fit in "
                    f"M={memory.capacity}"
                )
            memory.evict_oldest(deficit)


class InstrumentedEviction(EvictionPolicy):
    """Wraps any eviction policy and reports what it flushed.

    The engine installs this wrapper only when instrumentation is
    configured, so the uninstrumented path never pays for it. Flushes
    are observed by differencing memory state around the inner
    policy's ``make_room`` — policy-agnostic, so every current and
    future discipline is covered without touching its code. One
    ``eviction`` event is emitted per fault that actually freed room
    (eviction *churn* is their count and total copies)."""

    def __init__(self, inner: EvictionPolicy, hook: "InstrumentationHook") -> None:
        self.inner = inner
        self.hook = hook

    def make_room(self, memory: Memory, incoming: Block) -> None:
        if isinstance(memory, WeakMemory):
            before = memory.resident_blocks()
            occupancy_before = memory.occupancy
            self.inner.make_room(memory, incoming)
            survivors = set(memory.resident_blocks())
            evicted = tuple(b for b in before if b not in survivors)
            if evicted:
                self.hook.eviction(
                    block_ids=evicted,
                    copies=occupancy_before - memory.occupancy,
                    occupancy=memory.occupancy,
                )
        else:
            occupancy_before = memory.occupancy
            self.inner.make_room(memory, incoming)
            freed = occupancy_before - memory.occupancy
            if freed > 0:
                self.hook.eviction(
                    block_ids=None, copies=freed, occupancy=memory.occupancy
                )

    def reset(self) -> None:
        self.inner.reset()


def default_eviction(params: ModelParams) -> EvictionPolicy:
    """LRU for the weak model, FIFO copies for the strong model."""
    if params.paging_model is PagingModel.WEAK:
        return LruEviction()
    return FifoCopiesEviction()

"""Exact off-line optimum for small instances (block choice included).

Belady's MIN (:mod:`repro.paging.belady`) is optimal when ``s = 1`` —
eviction is the only decision. With redundancy (``s > 1``) the pager
*also* chooses which copy to read, and no simple greedy rule is known
to be optimal (the gap the paper's question 1 circles). For small
instances the true optimum is computable by memoized search over
``(path position, resident block set)`` states; this module provides
it, so the shipped on-line policies can be scored against the real
off-line optimum on micro-benchmarks.

State space is ``O(L * (#blocks choose M/B))`` — use only for tiny
configurations (the guard refuses anything bigger than
``max_states``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.core.blocking import Blocking
from repro.core.model import ModelParams
from repro.errors import PagingError
from repro.typing import BlockId, Vertex


def optimal_offline_faults(
    path: Sequence[Vertex],
    blocking: Blocking,
    params: ModelParams,
    max_states: int = 2_000_000,
) -> int:
    """The minimum number of block reads any (lazy or not) weak-model
    pager needs to service ``path``, minimizing over block choices and
    evictions jointly.

    Lazy schedules suffice for the optimum (Theorem 1), so the search
    branches only at faults: over which candidate block to read, and
    which resident blocks to flush to make room.
    """
    if not path:
        return 0
    block_ids: dict[BlockId, int] = {}
    position_candidates: list[tuple[int, ...]] = []
    sizes: list[int] = []
    vertex_sets: list[frozenset[Vertex]] = []
    for vertex in path:
        candidates = blocking.blocks_for(vertex)
        if not candidates:
            raise PagingError(f"vertex {vertex!r} is not covered by the blocking")
        indexed = []
        for bid in candidates:
            if bid not in block_ids:
                block_ids[bid] = len(block_ids)
                block = blocking.block(bid)
                sizes.append(len(block))
                vertex_sets.append(block.vertices)
            indexed.append(block_ids[bid])
        position_candidates.append(tuple(indexed))

    memory_size = params.memory_size
    budget = [max_states]

    @lru_cache(maxsize=None)
    def solve(position: int, resident: frozenset[int]) -> int:
        budget[0] -= 1
        if budget[0] < 0:
            raise PagingError(
                "optimal_offline_faults state budget exceeded; "
                "the instance is too large for exact search"
            )
        if position == len(path):
            return 0
        vertex = path[position]
        if any(vertex in vertex_sets[b] for b in resident):
            return solve(position + 1, resident)
        best = None
        for candidate in position_candidates[position]:
            for kept in _eviction_options(
                resident, sizes, memory_size - sizes[candidate]
            ):
                cost = 1 + solve(position + 1, kept | {candidate})
                if best is None or cost < best:
                    best = cost
        assert best is not None
        return best

    try:
        return solve(0, frozenset())
    finally:
        solve.cache_clear()


def _eviction_options(
    resident: frozenset[int], sizes: Sequence[int], capacity: int
):
    """All maximal subsets of ``resident`` fitting in ``capacity``.

    Considering only maximal keep-sets is safe: keeping more blocks
    never increases the optimal cost. Subsets are enumerated by
    dropping blocks until the rest fits; for the tiny instances this
    module targets, plain subset enumeration is fine.
    """
    if capacity < 0:
        raise PagingError("block larger than memory")
    members = sorted(resident)
    total = sum(sizes[b] for b in members)
    if total <= capacity:
        yield frozenset(members)
        return
    seen: set[frozenset[int]] = set()
    stack = [(frozenset(members), total)]
    while stack:
        current, weight = stack.pop()
        if weight <= capacity:
            # Maximal check: no dropped block could be re-added.
            if current not in seen:
                seen.add(current)
                yield current
            continue
        for b in current:
            smaller = current - {b}
            if smaller not in seen:
                stack.append((smaller, weight - sizes[b]))


def policy_optimality_gap(
    path: Sequence[Vertex],
    blocking: Blocking,
    params: ModelParams,
    online_faults: int,
    max_states: int = 2_000_000,
) -> float:
    """``online_faults / optimum`` (1.0 = the policy was optimal)."""
    optimum = optimal_offline_faults(path, blocking, params, max_states)
    if optimum == 0:
        return 1.0 if online_faults == 0 else float("inf")
    return online_faults / optimum

"""Off-line paging (Lemma 1).

An off-line pager may inspect the entire path before choosing blocks.
Lemma 1: with the blocking "all paths of length ``B - 1``" and the rule
"at a fault, read the block holding the next ``B - 1`` steps of the
path", a speed-up of at least ``B`` is always achieved — even when
``B = M``.

Two pieces:

* :func:`path_windows_blocking` — the window blocks actually needed for one
  concrete path: one block per window of ``B`` consecutive path
  vertices. (The full Lemma 1 blocking contains *every* length-
  ``(B-1)`` walk; see :mod:`repro.blockings.paths_blocking` for the
  exhaustive version on tiny graphs.)
* :class:`OfflineWindowPolicy` — the look-ahead block choice. It is fed
  the path up front and tracks the pathfront's position, so at a fault
  on position ``i`` it reads the window ``[i, i + B)``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.blocking import Blocking, ExplicitBlocking
from repro.core.memory import Memory
from repro.core.policies import BlockChoicePolicy
from repro.errors import PagingError
from repro.typing import BlockId, Vertex


def path_windows_blocking(
    path: Sequence[Vertex], block_size: int, universe_size: int | None = None
) -> ExplicitBlocking:
    """One block per window of ``block_size`` consecutive path vertices.

    Block ``("window", i)`` holds ``set(path[i : i + block_size])`` —
    at most ``B`` distinct vertices even if the walk revisits some.
    Every path position is the start of some window, so the off-line
    policy below can always service a fault with a full look-ahead
    block.
    """
    if not path:
        raise PagingError("path must be non-empty")
    blocks: dict[BlockId, set[Vertex]] = {}
    for i in range(len(path)):
        blocks[("window", i)] = set(path[i : i + block_size])
    return ExplicitBlocking(block_size, blocks, universe_size=universe_size)


class OfflineWindowPolicy(BlockChoicePolicy):
    """Lemma 1's off-line rule: read the window starting at the fault.

    The policy is stateful: it walks an internal cursor along the path
    in lock-step with the engine. Faults arrive in path order, so the
    cursor only ever advances.

    Use with :class:`repro.paging.eviction.EvictAllPolicy` (Lemma 1's
    own discipline). Under evict-all the fault vertex's first
    occurrence at or past the cursor *is* the fault position (every
    earlier occurrence would still be covered by the loaded window), so
    the cursor scan recovers positions exactly even when the walk
    revisits vertices. Other eviction policies may evict mid-window and
    break that correspondence.
    """

    def __init__(self, path: Sequence[Vertex]) -> None:
        self._path = list(path)
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def choose(self, vertex: Vertex, blocking: Blocking, memory: Memory) -> BlockId:
        # Advance the cursor to the next path position holding `vertex`.
        # The engine faults at most once per position, and positions of
        # successive faults are nondecreasing.
        while self._cursor < len(self._path) and self._path[self._cursor] != vertex:
            self._cursor += 1
        if self._cursor >= len(self._path):
            raise PagingError(
                f"fault on {vertex!r} beyond the end of the provided path"
            )
        block_id = ("window", self._cursor)
        self._cursor += 1
        return block_id

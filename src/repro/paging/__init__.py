"""Paging strategies: eviction disciplines, off-line paging, laziness."""

from repro.paging.belady import belady_trace, competitive_ratio
from repro.paging.eviction import (
    EvictAllPolicy,
    EvictionPolicy,
    FifoCopiesEviction,
    LruEviction,
    default_eviction,
)
from repro.paging.marking import MarkingEviction
from repro.paging.optimal import optimal_offline_faults, policy_optimality_gap
from repro.paging.lazy import (
    Op,
    OpKind,
    count_reads,
    flush,
    is_lazy,
    lazify,
    read,
    schedule_from_trace,
    validate_schedule,
)
from repro.paging.offline import OfflineWindowPolicy, path_windows_blocking

__all__ = [
    "EvictAllPolicy",
    "belady_trace",
    "competitive_ratio",
    "EvictionPolicy",
    "FifoCopiesEviction",
    "LruEviction",
    "MarkingEviction",
    "optimal_offline_faults",
    "policy_optimality_gap",
    "Op",
    "OpKind",
    "OfflineWindowPolicy",
    "count_reads",
    "default_eviction",
    "flush",
    "is_lazy",
    "lazify",
    "path_windows_blocking",
    "read",
    "schedule_from_trace",
    "validate_schedule",
]

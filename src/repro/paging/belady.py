"""Off-line optimal eviction (Belady's MIN) and competitive ratios.

The paper's final open question asks what competitive analysis would
say about blocking (Conclusions, question 8). This module supplies the
measurement apparatus: for a *fixed* blocking with ``s = 1`` (each
vertex in exactly one block, so the block choice is forced and only
eviction is a decision — exactly the classical paging setting), it
computes the off-line optimal fault count via Belady's
farthest-next-use rule, which is optimal for paging with uniform block
sizes. The competitive ratio of an on-line policy on a trace is then
``faults_online / faults_offline``.

For ``s > 1`` blockings the block *choice* also matters and MIN is no
longer obviously optimal; :func:`belady_trace` therefore refuses
blockings that replicate vertices rather than silently produce a
non-optimal "optimum".
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.core.blocking import Blocking
from repro.core.model import ModelParams
from repro.core.stats import SearchTrace
from repro.errors import PagingError
from repro.typing import BlockId, Vertex


def belady_trace(
    path: Sequence[Vertex], blocking: Blocking, params: ModelParams
) -> SearchTrace:
    """Simulate the path under Belady's MIN eviction.

    Lazy (reads only on faults), weak-model (whole blocks), off-line
    (knows the entire path). Requires an ``s = 1`` blocking: every
    vertex in exactly one block.

    Returns a :class:`SearchTrace` comparable to the on-line engine's.
    """
    # Resolve each position to its (unique) block.
    block_of: list[BlockId] = []
    for vertex in path:
        candidates = blocking.blocks_for(vertex)
        if len(candidates) != 1:
            raise PagingError(
                "belady_trace requires an s=1 blocking (vertex "
                f"{vertex!r} lives in {len(candidates)} blocks)"
            )
        block_of.append(candidates[0])

    # next_use[i] = next position > i referencing the same block.
    infinity = len(path) + 1
    next_use = [infinity] * len(path)
    last_seen: dict[BlockId, int] = {}
    for i in range(len(path) - 1, -1, -1):
        bid = block_of[i]
        next_use[i] = last_seen.get(bid, infinity)
        last_seen[bid] = i

    trace = SearchTrace()
    resident: dict[BlockId, int] = {}  # block id -> size
    occupancy = 0
    # Max-heap of (-next_use, block id); entries go stale when a block
    # is referenced again, so validate against `upcoming` on pop.
    heap: list[tuple[int, BlockId]] = []
    upcoming: dict[BlockId, int] = {}
    steps_since_fault = 0
    for position, vertex in enumerate(path):
        if position > 0:
            trace.steps += 1
            steps_since_fault += 1
        bid = block_of[position]
        if bid in resident:
            upcoming[bid] = next_use[position]
            heapq.heappush(heap, (-next_use[position], bid))
            continue
        # Page fault.
        trace.faults += 1
        trace.fault_gaps.append(steps_since_fault)
        steps_since_fault = 0
        block = blocking.block(bid)
        while occupancy + len(block) > params.memory_size:
            victim = _pop_farthest(heap, upcoming, resident)
            occupancy -= resident.pop(victim)
            del upcoming[victim]
        resident[bid] = len(block)
        occupancy += len(block)
        upcoming[bid] = next_use[position]
        heapq.heappush(heap, (-next_use[position], bid))
        trace.blocks_read += 1
        trace.block_reads.append(bid)
    return trace


def _pop_farthest(heap, upcoming, resident) -> BlockId:
    """The resident block whose next use is farthest away."""
    while heap:
        neg_use, bid = heapq.heappop(heap)
        if bid in resident and upcoming.get(bid) == -neg_use:
            return bid
    raise PagingError("nothing evictable (memory smaller than one block?)")


def competitive_ratio(online: SearchTrace, offline: SearchTrace) -> float:
    """``faults_online / faults_offline`` on the same path/blocking.

    Infinity when the off-line run never faults but the on-line one
    does; 1.0 when neither faults.
    """
    if offline.faults == 0:
        return 1.0 if online.faults == 0 else float("inf")
    return online.faults / offline.faults

"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ModelError(ReproError):
    """Invalid external-memory model parameters (e.g. ``B > M``)."""


class GraphError(ReproError):
    """Invalid graph construction or a query about a missing vertex."""


class BlockingError(ReproError):
    """Invalid blocking: oversized block, uncovered vertex, bad id."""


class PagingError(ReproError):
    """A paging policy failed to service a fault within the model rules."""


class AdversaryError(ReproError):
    """An adversary produced an illegal move (not an edge of the graph)."""


class AnalysisError(ReproError):
    """An analysis routine was asked an ill-posed question.

    Example: the k-radius of a vertex in a graph with at most ``k``
    vertices, for which no break-out vertex exists.
    """

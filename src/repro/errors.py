"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ModelError(ReproError):
    """Invalid external-memory model parameters (e.g. ``B > M``)."""


class GraphError(ReproError):
    """Invalid graph construction or a query about a missing vertex."""


class BlockingError(ReproError):
    """Invalid blocking: oversized block, uncovered vertex, bad id."""


class PagingError(ReproError):
    """A paging policy failed to service a fault within the model rules."""


class BlockReadError(PagingError):
    """A block could not be read from the (simulated) disk.

    Raised by the reliability layer when a read fails permanently — the
    block is lost, or every retry the policy granted was consumed — and,
    from the engine, only after replica fallback found no surviving
    block covering the faulting vertex.

    Attributes:
        block_id: the block whose read failed (the last one tried).
        vertex: the faulting vertex, when raised from the engine.
        attempts: physical read attempts made on ``block_id``.
        permanent: whether the failure is unrecoverable block loss (as
            opposed to an exhausted retry budget).
        trace: the partial :class:`~repro.core.stats.SearchTrace` up to
            the failure, when raised from the engine; ``None`` from the
            store layer.
    """

    def __init__(
        self,
        message: str,
        *,
        block_id=None,
        vertex=None,
        attempts: int = 0,
        permanent: bool = False,
        trace=None,
    ) -> None:
        super().__init__(message)
        self.block_id = block_id
        self.vertex = vertex
        self.attempts = attempts
        self.permanent = permanent
        self.trace = trace


class BudgetExceededError(ReproError):
    """A run's step/IO budget was exhausted (the harness watchdog).

    Carries the partial trace so aborted runs still report how far they
    got before the watchdog fired.
    """

    def __init__(self, message: str, *, trace=None) -> None:
        super().__init__(message)
        self.trace = trace


class AdversaryError(ReproError):
    """An adversary produced an illegal move (not an edge of the graph)."""


class ServiceError(ReproError):
    """Base of search-service failures (:mod:`repro.service`)."""


class ServiceOverloadError(ServiceError):
    """A request was shed because a queue bound was hit.

    Raised synchronously from ``submit`` — the request was never
    enqueued, so backpressure is a typed signal to the client, not a
    block or a silent drop.

    Attributes:
        tenant: the tenant whose request was shed.
        scope: ``"tenant"`` (the tenant's pending bound) or
            ``"global"`` (the shared queue).
    """

    def __init__(self, message: str, *, tenant: str = "?", scope: str = "global") -> None:
        super().__init__(message)
        self.tenant = tenant
        self.scope = scope


class TenantBudgetError(ServiceError):
    """A tenant's cache memory budget cannot admit a required block.

    Raised when a single block is larger than the tenant's configured
    budget — no eviction of the tenant's own holdings could ever make
    it fit, so the request fails typed instead of thrashing.
    """

    def __init__(self, message: str, *, tenant: str = "?") -> None:
        super().__init__(message)
        self.tenant = tenant


class ServiceClosedError(ServiceError):
    """A request arrived after the service began draining."""


class AnalysisError(ReproError):
    """An analysis routine was asked an ill-posed question.

    Example: the k-radius of a vertex in a graph with at most ``k``
    vertices, for which no break-out vertex exists.
    """

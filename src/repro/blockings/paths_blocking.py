"""The Lemma 1 all-paths blocking.

Lemma 1's blocking stores "the vertices of all paths of length
``B - 1``" — one block per length-``(B-1)`` walk, deduplicated by
vertex set. Its storage blow-up is enormous (that is the lemma's
point: unbounded redundancy plus off-line paging yields the perfect
speed-up ``B`` even when ``B = M``), so the exhaustive construction is
only feasible on tiny graphs; for a single known path, the much
smaller :func:`repro.paging.offline.path_windows_blocking` carries the
same guarantee.
"""

from __future__ import annotations

from repro.core.blocking import Blocking, ExplicitBlocking
from repro.core.memory import Memory
from repro.core.policies import BlockChoicePolicy
from repro.errors import BlockingError, PagingError
from repro.graphs.base import FiniteGraph
from repro.typing import BlockId, Vertex


def all_walks_blocking(graph: FiniteGraph, block_size: int) -> ExplicitBlocking:
    """Every walk of ``block_size`` vertices, as blocks keyed by their
    vertex set.

    Exponential in ``B`` — guard-railed to refuse graphs where the walk
    count would exceed a million.
    """
    walk_bound = len(graph) * max(
        (graph.degree(v) for v in graph.vertices()), default=1
    ) ** max(block_size - 1, 0)
    if walk_bound > 1_000_000:
        raise BlockingError(
            f"all-walks blocking would enumerate ~{walk_bound} walks; "
            "use path_windows_blocking for long paths instead"
        )
    blocks: dict[BlockId, frozenset[Vertex]] = {}
    for start in graph.vertices():
        stack: list[list[Vertex]] = [[start]]
        while stack:
            walk = stack.pop()
            if len(walk) == block_size:
                key = frozenset(walk)
                blocks.setdefault(key, key)
                continue
            for nxt in graph.neighbors(walk[-1]):
                stack.append(walk + [nxt])
    if not blocks:
        raise BlockingError("graph has no vertices")
    return ExplicitBlocking(block_size, blocks, universe_size=len(graph))


class OfflineWalkPolicy(BlockChoicePolicy):
    """Lemma 1's off-line rule against :func:`all_walks_blocking`: at a
    fault, read the block holding the next ``B`` path vertices.

    Requires the evict-all discipline, like
    :class:`repro.paging.offline.OfflineWindowPolicy` (same cursor
    recovery argument).
    """

    def __init__(self, path: list[Vertex]) -> None:
        self._path = list(path)
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def choose(self, vertex: Vertex, blocking: Blocking, memory: Memory) -> BlockId:
        while self._cursor < len(self._path) and self._path[self._cursor] != vertex:
            self._cursor += 1
        if self._cursor >= len(self._path):
            raise PagingError(
                f"fault on {vertex!r} beyond the end of the provided path"
            )
        window = self._path[self._cursor : self._cursor + blocking.block_size]
        self._cursor += 1
        block_id = frozenset(window)
        candidates = blocking.blocks_for(vertex)
        if block_id in candidates:
            return block_id
        # The path's tail is shorter than B: any block containing the
        # remaining window works; prefer a superset of it.
        for candidate in candidates:
            if block_id <= blocking.block(candidate).vertices:
                return candidate
        if not candidates:
            raise PagingError(f"vertex {vertex!r} is not covered by the blocking")
        return candidates[0]

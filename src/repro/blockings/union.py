"""Union of blockings — the paper's overlapped-copies trick.

Several of the paper's constructions store the graph more than once,
each copy blocked differently, and let the pager pick whichever copy
serves a fault best: the two offset tree stratifications of Lemma 17,
the two offset grid tessellations of Lemmas 22/26, the two offset 1-D
blockings of Section 6.1.2. :class:`UnionBlocking` composes any list
of blockings into one, namespacing block ids by copy index; its
storage blow-up is the sum of the copies' blow-ups.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.block import Block, make_block
from repro.core.blocking import Blocking
from repro.errors import BlockingError
from repro.typing import BlockId, Vertex


class UnionBlocking(Blocking):
    """The union of several blockings of the same graph.

    Block ids are ``(copy_index, inner_id)``. All copies must share
    one block size.
    """

    def __init__(self, copies: Sequence[Blocking]) -> None:
        if not copies:
            raise BlockingError("a union needs at least one blocking")
        sizes = {b.block_size for b in copies}
        if len(sizes) != 1:
            raise BlockingError(f"mismatched block sizes in union: {sorted(sizes)}")
        self._copies = list(copies)
        self._block_size = sizes.pop()

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def copies(self) -> list[Blocking]:
        return list(self._copies)

    def blocks_for(self, vertex: Vertex) -> tuple[BlockId, ...]:
        result: list[BlockId] = []
        for index, copy in enumerate(self._copies):
            result.extend((index, bid) for bid in copy.blocks_for(vertex))
        return tuple(result)

    def block(self, block_id: BlockId) -> Block:
        index, inner = self._unpack(block_id)
        inner_block = self._copies[index].block(inner)
        # Re-wrap so the block's id matches the union's namespace.
        return make_block(block_id, inner_block.vertices, self._block_size)

    def storage_blowup(self) -> float:
        return sum(copy.storage_blowup() for copy in self._copies)

    def interior_distance(self, block_id: BlockId, vertex: Vertex) -> float:
        """Delegated interior distance (see
        :class:`repro.blockings.policies.MostInteriorPolicy`); requires
        every copy to expose ``interior_distance``."""
        index, inner = self._unpack(block_id)
        copy = self._copies[index]
        distance = getattr(copy, "interior_distance", None)
        if distance is None:
            raise BlockingError(
                f"blocking copy {index} does not expose interior_distance"
            )
        return distance(inner, vertex)

    def _unpack(self, block_id: BlockId) -> tuple[int, BlockId]:
        if (
            not isinstance(block_id, tuple)
            or len(block_id) != 2
            or not isinstance(block_id[0], int)
            or not 0 <= block_id[0] < len(self._copies)
        ):
            raise BlockingError(f"malformed union block id {block_id!r}")
        return block_id[0], block_id[1]

"""Complete-tree blockings (Section 5.2, Figure 4).

* :func:`naive_subtree_blocking` — the "obvious" packing of disjoint
  height-``k`` subtrees into blocks (``s = 1``). The paper notes an
  adversary bouncing across block boundaries holds it to ``sigma ~ 2``
  — this is the cautionary baseline.
* :func:`overlapped_tree_blocking` — Lemma 17: the same stratification
  *twice*, the second copy offset by half a stratum (``s = 2``). A
  pathfront leaving a block of one copy lands mid-block in the other,
  guaranteeing ``sigma >= lg B / (2 lg d)``.

Both are implicit: a block is identified by its root vertex, and
membership is depth arithmetic on the heap indices.
"""

from __future__ import annotations

from repro.blockings.union import UnionBlocking
from repro.core.blocking import ImplicitBlocking
from repro.errors import BlockingError
from repro.graphs.tree import CompleteTree
from repro.typing import BlockId, Vertex


def tree_block_levels(block_size: int, arity: int) -> int:
    """The tallest ``k`` with ``(d^k - 1)/(d - 1) <= B``: how many full
    tree levels fit in one block."""
    if block_size < 1:
        raise BlockingError(f"block size must be >= 1, got {block_size}")
    levels = 0
    while (arity ** (levels + 1) - 1) // (arity - 1) <= block_size:
        levels += 1
    if levels == 0:
        raise BlockingError(f"B={block_size} cannot hold even one vertex?")
    return levels


class TreeStrataBlocking(ImplicitBlocking):
    """One stratification of a complete tree into subtree blocks.

    Strata boundaries sit at depths ``offset, offset + k, ...``; each
    block is the ``k``-level subtree hanging from a stratum root (the
    children of a block's bottom level are the roots of the next
    stratum's blocks). When ``offset > 0`` there is an additional
    partial block of ``offset`` levels at the very top. ``s = 1``:
    every vertex lies in exactly one block.
    """

    def __init__(
        self, tree: CompleteTree, block_size: int, levels: int, offset: int = 0
    ) -> None:
        if levels < 1:
            raise BlockingError(f"levels must be >= 1, got {levels}")
        if not 0 <= offset < levels:
            raise BlockingError(
                f"offset must be in [0, levels), got {offset} with {levels}"
            )
        block_vertices = (tree.arity ** levels - 1) // (tree.arity - 1)
        if block_vertices > block_size:
            raise BlockingError(
                f"{levels} levels of a {tree.arity}-ary tree hold "
                f"{block_vertices} vertices, exceeding B={block_size}"
            )
        super().__init__(block_size, blowup=1.0)
        self._tree = tree
        self._levels = levels
        self._offset = offset

    @property
    def tree(self) -> CompleteTree:
        return self._tree

    @property
    def levels(self) -> int:
        return self._levels

    @property
    def offset(self) -> int:
        return self._offset

    def _stratum_start(self, depth: int) -> int:
        """The depth at which the block containing depth ``depth`` starts."""
        if depth < self._offset:
            return 0
        return self._offset + ((depth - self._offset) // self._levels) * self._levels

    def _block_levels(self, start: int) -> int:
        """How many levels the block starting at ``start`` spans."""
        if start == 0 and self._offset > 0:
            return self._offset
        return min(self._levels, self._tree.height - start + 1)

    def blocks_for(self, vertex: Vertex) -> tuple[BlockId, ...]:
        depth = self._tree.depth(vertex)
        root = self._tree.ancestor_at_depth(vertex, self._stratum_start(depth))
        return (root,)

    def _materialize(self, block_id: BlockId) -> frozenset[int]:
        tree = self._tree
        if not tree.has_vertex(block_id):
            raise BlockingError(f"unknown block root {block_id!r}")
        start = tree.depth(block_id)
        if start != self._stratum_start(start):
            raise BlockingError(f"{block_id!r} is not a stratum root")
        levels = self._block_levels(start)
        members = [block_id]
        frontier = [block_id]
        for _ in range(levels - 1):
            nxt: list[int] = []
            for v in frontier:
                nxt.extend(tree.children(v))
            members.extend(nxt)
            frontier = nxt
        return frozenset(members)

    def interior_distance(self, block_id: BlockId, vertex: Vertex) -> float:
        """Steps from ``vertex`` to the nearest vertex outside its
        block: out through the top (to the stratum root's parent) or
        out through the bottom (to a child of the block's last level).
        Sides of a subtree block border nothing — a tree has no lateral
        edges — and blocks touching the tree's root or leaves have no
        exit that way."""
        tree = self._tree
        start = tree.depth(block_id)
        depth = tree.depth(vertex)
        bottom = start + self._block_levels(start) - 1
        up = float("inf") if start == 0 else (depth - start) + 1
        down = float("inf") if bottom >= tree.height else (bottom - depth) + 1
        return min(up, down)


def naive_subtree_blocking(
    tree: CompleteTree, block_size: int
) -> TreeStrataBlocking:
    """The ``s = 1`` baseline: disjoint maximal subtree blocks."""
    return TreeStrataBlocking(
        tree, block_size, tree_block_levels(block_size, tree.arity), offset=0
    )


def overlapped_tree_blocking(tree: CompleteTree, block_size: int) -> UnionBlocking:
    """Lemma 17: two stratifications offset by half a stratum, s = 2."""
    levels = tree_block_levels(block_size, tree.arity)
    if levels < 2:
        raise BlockingError(
            f"B={block_size} holds only one level of a {tree.arity}-ary "
            "tree; the overlapped blocking needs at least two"
        )
    return UnionBlocking(
        [
            TreeStrataBlocking(tree, block_size, levels, offset=0),
            TreeStrataBlocking(tree, block_size, levels, offset=levels // 2),
        ]
    )

"""Grid-graph blockings (Section 6).

All of these are implicit — block membership is coordinate arithmetic —
so they block *infinite* grids at zero storage cost:

* :func:`contiguous_1d_blocking` — Lemma 20 / Figure 7(a): consecutive
  runs of ``B`` integers, ``s = 1``, speed-up ``B`` with ``M >= 2B``.
* :func:`offset_1d_blocking` — Section 6.1.2 remark: two copies offset
  by ``B/2``, ``s = 2``, speed-up ``B/2`` with only ``M >= B``.
* :func:`offset_grid_blocking` — Lemmas 22/26 / Figure 6: ``s`` copies
  of the cubical tessellation of side ``floor(B^(1/d))``, mutually
  offset by ``c/s`` in every dimension (``s = 2``: corners of one at
  the centers of the other), speed-up ``B^(1/d)/4`` with ``M >= 2B``.
* :func:`sheared_grid_blocking` — Lemma 28 / Figure 7(b,c): the
  sheared isothetic tessellation, ``s = 1``, speed-up
  ``B^(1/d)/(2d^2)`` with ``M >= (d+1)B``. In two dimensions this is
  the classic brick pattern of Lemma 23 (speed-up ``sqrt(B)/6`` with
  ``M >= 3B``).
* :func:`uniform_grid_blocking` — the unsheared ``s = 1`` tessellation:
  the cautionary baseline whose ``2^d``-fold corners the Lemma 31
  adversary exploits.
"""

from __future__ import annotations

from repro.analysis.tessellation import (
    ShearedTessellation,
    Tessellation,
    UniformTessellation,
    sheared_side,
)
from repro.core.blocking import ImplicitBlocking
from repro.blockings.union import UnionBlocking
from repro.errors import BlockingError
from repro.typing import BlockId, Coord, Vertex


class TessellationBlocking(ImplicitBlocking):
    """One tessellation of ``Z^d`` as a blocking: block = tile.

    ``s = 1``: every lattice point lies in exactly one tile. Finite
    grids may be blocked with this too; tiles straddling the grid
    boundary simply carry some never-visited coordinates.
    """

    def __init__(self, tessellation: Tessellation, block_size: int) -> None:
        if tessellation.tile_volume > block_size:
            raise BlockingError(
                f"tile volume {tessellation.tile_volume} exceeds B={block_size}"
            )
        super().__init__(block_size, blowup=1.0)
        self._tess = tessellation

    @property
    def tessellation(self) -> Tessellation:
        return self._tess

    def blocks_for(self, vertex: Vertex) -> tuple[BlockId, ...]:
        return (self._tess.tile_of(vertex),)

    def _materialize(self, block_id: BlockId) -> frozenset[Coord]:
        return frozenset(self._tess.cells(block_id))

    def interior_distance(self, block_id: BlockId, vertex: Vertex) -> float:
        """Steps needed to leave the tile from ``vertex`` (both L1 and
        Chebyshev metrics agree on axis-aligned boxes)."""
        return float(self._tess.boundary_distance(vertex))


def contiguous_1d_blocking(block_size: int) -> TessellationBlocking:
    """Lemma 20: ``B_i = [iB, (i+1)B)``, ``s = 1``."""
    return TessellationBlocking(
        UniformTessellation(1, block_size), block_size
    )


def offset_1d_blocking(block_size: int) -> UnionBlocking:
    """Section 6.1.2: two 1-D blockings offset by ``B/2``, ``s = 2``."""
    if block_size < 2:
        raise BlockingError(f"offset blocking needs B >= 2, got {block_size}")
    return UnionBlocking(
        [
            TessellationBlocking(UniformTessellation(1, block_size), block_size),
            TessellationBlocking(
                UniformTessellation(1, block_size, offset=(block_size // 2,)),
                block_size,
            ),
        ]
    )


def grid_block_side(block_size: int, dim: int) -> int:
    """``floor(B^(1/d))`` — the cube side used by the offset blockings."""
    if block_size < 1:
        raise BlockingError(f"block size must be >= 1, got {block_size}")
    side = int(round(block_size ** (1.0 / dim)))
    while side ** dim > block_size:
        side -= 1
    while (side + 1) ** dim <= block_size:
        side += 1
    if side < 1:
        raise BlockingError(f"B={block_size} too small for dimension {dim}")
    return side


def offset_grid_blocking(
    dim: int, block_size: int, copies: int = 2
) -> UnionBlocking:
    """Lemmas 22/26: ``copies`` cubical tessellations of side
    ``floor(B^(1/d))``, the k-th offset by ``k*c/copies`` in every
    dimension. ``copies = 2`` is the paper's construction (``s = 2``);
    other values support the offset-ablation benchmarks."""
    if copies < 1:
        raise BlockingError(f"copies must be >= 1, got {copies}")
    side = grid_block_side(block_size, dim)
    if copies > 1 and side < copies:
        raise BlockingError(
            f"side {side} too small to offset {copies} copies"
        )
    tessellations = [
        UniformTessellation(dim, side, offset=(k * side // copies,) * dim)
        for k in range(copies)
    ]
    return UnionBlocking(
        [TessellationBlocking(t, block_size) for t in tessellations]
    )


def sheared_grid_blocking(dim: int, block_size: int) -> TessellationBlocking:
    """Lemma 28: the sheared isothetic tessellation, ``s = 1``.

    The side is rounded down so every shear offset is exact (see
    :func:`repro.analysis.tessellation.sheared_side`); this costs at
    most a constant factor in the speed-up.
    """
    side = sheared_side(block_size, dim)
    return TessellationBlocking(ShearedTessellation(dim, side), block_size)


def uniform_grid_blocking(dim: int, block_size: int) -> TessellationBlocking:
    """The unsheared cubical tessellation, ``s = 1`` — the baseline
    with ``2^d``-fold corners (Lemma 30) that the corner-loop adversary
    punishes."""
    side = grid_block_side(block_size, dim)
    return TessellationBlocking(UniformTessellation(dim, side), block_size)


class GridNeighborhoodBlocking(ImplicitBlocking):
    """Lemma 13/27 on (infinite) grid graphs, implicitly: one block per
    lattice point, holding the L1 ball of the largest radius ``r`` with
    ``k_d(r) <= B`` — a compact neighborhood of its center.

    ``blocks_for`` lists the centers whose ball contains the vertex,
    nearest first, so :class:`~repro.core.policies.FirstBlockPolicy`
    implements exactly Lemma 13's "bring in the faulting vertex's own
    block". Storage blow-up is ``k_d(r)`` (each vertex lies in that
    many balls) — the paper's ``s = B`` up to the ball/box rounding.
    """

    def __init__(self, dim: int, block_size: int) -> None:
        from repro.analysis.theory import grid_ball_volume_exact

        if dim < 1:
            raise BlockingError(f"dim must be >= 1, got {dim}")
        radius = 0
        while grid_ball_volume_exact(dim, radius + 1) <= block_size:
            radius += 1
        volume = grid_ball_volume_exact(dim, radius)
        super().__init__(block_size, blowup=float(volume))
        self._dim = dim
        self._radius = radius
        self._offsets = self._ball_offsets(dim, radius)

    @property
    def radius(self) -> int:
        """The ball radius ``r``; Lemma 13 guarantees ``sigma >= r``."""
        return self._radius

    @staticmethod
    def _ball_offsets(dim: int, radius: int) -> list[Coord]:
        """All offsets with L1 norm <= radius, sorted by norm."""
        import itertools as _it

        offsets = [
            delta
            for delta in _it.product(range(-radius, radius + 1), repeat=dim)
            if sum(abs(x) for x in delta) <= radius
        ]
        offsets.sort(key=lambda delta: sum(abs(x) for x in delta))
        return offsets

    def blocks_for(self, vertex: Vertex) -> tuple[BlockId, ...]:
        return tuple(
            tuple(v + o for v, o in zip(vertex, offset))
            for offset in self._offsets
        )

    def _materialize(self, block_id: BlockId) -> frozenset[Coord]:
        return frozenset(
            tuple(c + o for c, o in zip(block_id, offset))
            for offset in self._offsets
        )

    def interior_distance(self, block_id: BlockId, vertex: Vertex) -> float:
        norm = sum(abs(v - c) for v, c in zip(vertex, block_id))
        return float(self._radius - norm + 1)


def grid_lemma13_blocking(dim: int, block_size: int) -> GridNeighborhoodBlocking:
    """Lemma 27: the per-vertex L1-ball blocking of a d-dimensional
    grid, guaranteeing ``sigma >= r_d(B) ~ (1/2e) d B^(1/d)``."""
    return GridNeighborhoodBlocking(dim, block_size)


class DiagonalNeighborhoodBlocking(ImplicitBlocking):
    """Lemma 13 on (infinite) diagonal grid graphs: one block per
    lattice point holding the Chebyshev ball of the largest radius
    ``r`` with ``(2r+1)^d <= B``.

    The diagonal analogue of :class:`GridNeighborhoodBlocking`; it
    guarantees ``sigma >= r`` against any walk, by the same Lemma 13
    argument with the L-infinity metric.
    """

    def __init__(self, dim: int, block_size: int) -> None:
        if dim < 1:
            raise BlockingError(f"dim must be >= 1, got {dim}")
        radius = 0
        while (2 * (radius + 1) + 1) ** dim <= block_size:
            radius += 1
        volume = (2 * radius + 1) ** dim
        super().__init__(block_size, blowup=float(volume))
        self._dim = dim
        self._radius = radius
        import itertools as _it

        self._offsets = sorted(
            _it.product(range(-radius, radius + 1), repeat=dim),
            key=lambda delta: max(abs(x) for x in delta),
        )

    @property
    def radius(self) -> int:
        """The Chebyshev ball radius; sigma >= radius is guaranteed."""
        return self._radius

    def blocks_for(self, vertex: Vertex) -> tuple[BlockId, ...]:
        return tuple(
            tuple(v + o for v, o in zip(vertex, offset))
            for offset in self._offsets
        )

    def _materialize(self, block_id: BlockId) -> frozenset[Coord]:
        return frozenset(
            tuple(c + o for c, o in zip(block_id, offset))
            for offset in self._offsets
        )

    def interior_distance(self, block_id: BlockId, vertex: Vertex) -> float:
        norm = max(abs(v - c) for v, c in zip(vertex, block_id))
        return float(self._radius - norm + 1)


def diagonal_lemma13_blocking(dim: int, block_size: int) -> DiagonalNeighborhoodBlocking:
    """Lemma 13 for diagonal grids: per-vertex Chebyshev-ball blocks."""
    return DiagonalNeighborhoodBlocking(dim, block_size)

"""Compact-neighborhood blockings for general graphs (Section 4.2).

The paper's general lower bounds are all of one shape: pick a set of
*centers*, store a compact B-neighborhood of each center as a block,
and on a fault read the block of a nearby center. The variants differ
only in the center set, trading storage blow-up against the guarantee:

* :func:`lemma13_blocking` — a block around *every* vertex: speed-up
  ``r^-(B)``, blow-up ``s = B``.
* :func:`theorem4_blocking` — centers solving
  BALL COVER(floor(r^-(B)/2)) via Corollary 2: speed-up
  ``ceil(r^-(B)/2)``, blow-up ``~ 3B/r^-(B)``.
* :func:`theorem6_blocking` — centers from the Theorem 5 ball-packing
  cover: same speed-up, blow-up ``<= B / k^-(floor(r^-(B)/4))``
  (better for grid-like graphs: ``4^d`` for d-dimensional grids).

Each builder returns the blocking together with the
:class:`NearestCenterPolicy` the proof prescribes ("bring in the block
of the center within ``r/2`` of the fault").
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.analysis.ballcover import (
    ball_cover_corollary2,
    ball_cover_matching,
    ball_cover_packing,
    nearest_center_map,
    vertex_cover_2approx,
)
from repro.analysis.neighborhoods import compact_neighborhood
from repro.analysis.radii import min_radius
from repro.cache import cached
from repro.core.blocking import Blocking, ExplicitBlocking
from repro.core.memory import Memory
from repro.core.policies import BlockChoicePolicy
from repro.errors import BlockingError, PagingError
from repro.graphs.base import FiniteGraph
from repro.typing import BlockId, Vertex


def compact_neighborhood_blocking(
    graph: FiniteGraph, block_size: int, centers: Iterable[Vertex] | None = None
) -> ExplicitBlocking:
    """Blocks are compact B-neighborhoods of the given centers
    (default: every vertex — the Lemma 13 blocking).

    Block ids are ``("nbhd", center)``.
    """
    center_list = list(centers) if centers is not None else list(graph.vertices())
    if not center_list:
        raise BlockingError("no centers given")
    blocks = {
        ("nbhd", c): compact_neighborhood(graph, c, block_size).vertices
        for c in center_list
    }
    blocking = ExplicitBlocking(block_size, blocks, universe_size=len(graph))
    if not blocking.covers(graph.vertices()):
        raise BlockingError(
            "compact-neighborhood blocks do not cover the graph; "
            "centers are too sparse for this block size"
        )
    return blocking


class NearestCenterPolicy(BlockChoicePolicy):
    """On a fault at ``v``, read the block centered nearest to ``v``
    (the Theorem 4 proof's choice rule).

    Requires the nearest-center assignment up front; build one with
    :func:`repro.analysis.ballcover.nearest_center_map`.
    """

    def __init__(self, assignment: dict[Vertex, Vertex]) -> None:
        if not assignment:
            raise BlockingError("empty center assignment")
        self._assignment = assignment

    def choose(self, vertex: Vertex, blocking: Blocking, memory: Memory) -> BlockId:
        center = self._assignment.get(vertex)
        if center is None:
            raise PagingError(f"vertex {vertex!r} has no assigned center")
        block_id = ("nbhd", center)
        candidates = blocking.blocks_for(vertex)
        if block_id in candidates:
            return block_id
        # The fault vertex may not itself lie inside its nearest
        # center's block (only guaranteed when the cover radius is at
        # most the block radius); fall back to any covering block.
        if not candidates:
            raise PagingError(f"vertex {vertex!r} is not covered by the blocking")
        return candidates[0]


def _blocking_key(graph: FiniteGraph, block_size: int) -> tuple | None:
    """Cache key for a blocking construction, or ``None`` (uncached).

    The cached value is the ``(blocking, policy)`` pair: both are
    read-only during searches (the engine never mutates a blocking,
    and the nearest-center policy is stateless), so sharing one
    instance across games is safe — the harness already does exactly
    that within a cell.
    """
    graph_key = graph.cache_key()
    if graph_key is None:
        return None
    return (graph_key, block_size)


def lemma13_blocking(
    graph: FiniteGraph, block_size: int
) -> tuple[ExplicitBlocking, NearestCenterPolicy]:
    """Lemma 13: one compact B-neighborhood per vertex (``s = B``)."""

    def build() -> tuple[ExplicitBlocking, NearestCenterPolicy]:
        blocking = compact_neighborhood_blocking(graph, block_size)
        assignment = {v: v for v in graph.vertices()}
        return blocking, NearestCenterPolicy(assignment)

    return cached("blocking.lemma13", _blocking_key(graph, block_size), build)


def _cover_centers(graph: FiniteGraph, radius: int, method: str) -> list[Vertex]:
    """Centers solving BALL COVER(radius) by the requested construction."""
    if method == "packing":
        return ball_cover_packing(graph, radius)
    if method == "corollary2":
        if radius >= 3:
            return ball_cover_corollary2(graph, radius)
        if radius == 2:
            return ball_cover_matching(graph)
        return vertex_cover_2approx(graph)
    raise BlockingError(f"unknown ball-cover method {method!r}")


def _reduced_blocking(
    graph: FiniteGraph, block_size: int, method: str
) -> tuple[ExplicitBlocking, NearestCenterPolicy, list[Vertex]]:
    r_minus = min_radius(graph, block_size)
    if math.isinf(r_minus):
        raise BlockingError(
            f"graph has at most B={block_size} vertices; nothing to block"
        )
    cover_radius = max(int(r_minus) // 2, 0)
    if cover_radius == 0:
        # Degenerate radius: every vertex must be a center.
        centers: list[Vertex] = list(graph.vertices())
    else:
        centers = _cover_centers(graph, cover_radius, method)
    blocking = compact_neighborhood_blocking(graph, block_size, centers)
    policy = NearestCenterPolicy(nearest_center_map(graph, centers))
    return blocking, policy, centers


def theorem4_blocking(
    graph: FiniteGraph, block_size: int
) -> tuple[ExplicitBlocking, NearestCenterPolicy]:
    """Theorem 4: centers from the Corollary 2 ball cover at radius
    ``floor(r^-(B)/2)``; asymptotic blow-up ``3B/r^-(B)``."""

    def build() -> tuple[ExplicitBlocking, NearestCenterPolicy]:
        blocking, policy, _ = _reduced_blocking(graph, block_size, "corollary2")
        return blocking, policy

    return cached("blocking.theorem4", _blocking_key(graph, block_size), build)


def theorem6_blocking(
    graph: FiniteGraph, block_size: int
) -> tuple[ExplicitBlocking, NearestCenterPolicy]:
    """Theorem 6: centers from the Theorem 5 ball-packing cover;
    blow-up ``<= B / k^-(floor(r^-(B)/4))``."""

    def build() -> tuple[ExplicitBlocking, NearestCenterPolicy]:
        blocking, policy, _ = _reduced_blocking(graph, block_size, "packing")
        return blocking, policy

    return cached("blocking.theorem6", _blocking_key(graph, block_size), build)

"""Clip an implicit blocking to a finite graph.

The grid tessellation blockings tile all of ``Z^d``; when the searched
graph is a finite box (or a box with holes, like the warehouse
example), their blocks carry coordinates the graph does not contain.
That is harmless for correctness — the dead slots are never visited —
but it distorts storage accounting and wastes block capacity at the
boundary.

:func:`clip_blocking` materializes exactly the blocks that intersect a
finite graph, restricted to the graph's vertices, producing an
:class:`~repro.core.blocking.ExplicitBlocking` whose measured
storage blow-up is honest for the finite instance.
"""

from __future__ import annotations

from repro.core.blocking import Blocking, ExplicitBlocking
from repro.errors import BlockingError
from repro.graphs.base import FiniteGraph
from repro.typing import BlockId, Vertex


def clip_blocking(blocking: Blocking, graph: FiniteGraph) -> ExplicitBlocking:
    """Restrict ``blocking`` to the vertices of ``graph``.

    Every block id keeps its identity (so policies keyed on ids keep
    working); blocks that intersect the graph are kept with only their
    in-graph vertices; blocks entirely outside vanish.
    """
    clipped: dict[BlockId, set[Vertex]] = {}
    for vertex in graph.vertices():
        candidates = blocking.blocks_for(vertex)
        if not candidates:
            raise BlockingError(
                f"vertex {vertex!r} is not covered by the blocking"
            )
        for bid in candidates:
            clipped.setdefault(bid, set()).add(vertex)
    return ExplicitBlocking(
        blocking.block_size, clipped, universe_size=len(graph)
    )

"""The paper's blocking constructions."""

from repro.blockings.clip import clip_blocking
from repro.blockings.grid_blocking import (
    DiagonalNeighborhoodBlocking,
    GridNeighborhoodBlocking,
    diagonal_lemma13_blocking,
    grid_lemma13_blocking,
    TessellationBlocking,
    contiguous_1d_blocking,
    grid_block_side,
    offset_1d_blocking,
    offset_grid_blocking,
    sheared_grid_blocking,
    uniform_grid_blocking,
)
from repro.blockings.neighborhood_blocking import (
    NearestCenterPolicy,
    compact_neighborhood_blocking,
    lemma13_blocking,
    theorem4_blocking,
    theorem6_blocking,
)
from repro.blockings.paths_blocking import OfflineWalkPolicy, all_walks_blocking
from repro.blockings.policies import (
    FarthestFaultPolicy,
    MostInteriorPolicy,
    OtherCopyPolicy,
)
from repro.blockings.tree_blocking import (
    TreeStrataBlocking,
    naive_subtree_blocking,
    overlapped_tree_blocking,
    tree_block_levels,
)
from repro.blockings.union import UnionBlocking

__all__ = [
    "FarthestFaultPolicy",
    "MostInteriorPolicy",
    "NearestCenterPolicy",
    "OfflineWalkPolicy",
    "OtherCopyPolicy",
    "DiagonalNeighborhoodBlocking",
    "GridNeighborhoodBlocking",
    "TessellationBlocking",
    "TreeStrataBlocking",
    "UnionBlocking",
    "all_walks_blocking",
    "clip_blocking",
    "compact_neighborhood_blocking",
    "contiguous_1d_blocking",
    "diagonal_lemma13_blocking",
    "grid_block_side",
    "grid_lemma13_blocking",
    "lemma13_blocking",
    "naive_subtree_blocking",
    "offset_1d_blocking",
    "offset_grid_blocking",
    "overlapped_tree_blocking",
    "sheared_grid_blocking",
    "theorem4_blocking",
    "theorem6_blocking",
    "tree_block_levels",
    "uniform_grid_blocking",
]

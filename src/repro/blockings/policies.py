"""Construction-specific block-choice policies.

The paper's lower-bound proofs all pick the serving block by the same
instinct: *maximize how far the pathfront is from the chosen block's
boundary*. Lemma 17 phrases it as "bring in the block of the other
stratification"; Lemmas 20/22/26 as "bring in the tile the fault is
deepest inside". :class:`MostInteriorPolicy` implements the instinct
directly for any blocking exposing ``interior_distance(block_id, v)``
(all the implicit tree/grid blockings and their unions do);
:class:`OtherCopyPolicy` implements the literal Lemma 17 rule for
:class:`~repro.blockings.union.UnionBlocking`.
"""

from __future__ import annotations

from repro.blockings.union import UnionBlocking
from repro.core.blocking import Blocking
from repro.core.memory import Memory, WeakMemory
from repro.graphs.base import Graph
from repro.core.policies import BlockChoicePolicy
from repro.errors import PagingError
from repro.typing import BlockId, Vertex


class MostInteriorPolicy(BlockChoicePolicy):
    """Read the candidate block whose boundary is farthest from the
    fault vertex.

    With the Lemma 17 / 22 / 26 union blockings this reproduces the
    proofs' guarantees: the best candidate always has the fault at
    least half a block dimension from its boundary.
    """

    def choose(self, vertex: Vertex, blocking: Blocking, memory: Memory) -> BlockId:
        candidates = blocking.blocks_for(vertex)
        if not candidates:
            raise PagingError(f"vertex {vertex!r} is not covered by the blocking")
        distance = getattr(blocking, "interior_distance", None)
        if distance is None:
            raise PagingError(
                f"{type(blocking).__name__} does not expose interior_distance; "
                "MostInteriorPolicy cannot rank candidates"
            )
        return max(candidates, key=lambda bid: distance(bid, vertex))


class OtherCopyPolicy(BlockChoicePolicy):
    """Lemma 17's literal rule on a two-copy union blocking: when the
    pathfront steps out of a block of one copy, bring in the block of
    the *other* copy containing it.

    Tracks which copy served the previous fault; the first fault (and
    any fault where the alternate copy is unavailable) falls back to
    the most-interior choice.
    """

    def __init__(self) -> None:
        self._last_copy: int | None = None
        self._fallback = MostInteriorPolicy()

    def reset(self) -> None:
        self._last_copy = None
        self._fallback.reset()

    def choose(self, vertex: Vertex, blocking: Blocking, memory: Memory) -> BlockId:
        if not isinstance(blocking, UnionBlocking):
            raise PagingError("OtherCopyPolicy requires a UnionBlocking")
        candidates = blocking.blocks_for(vertex)
        if not candidates:
            raise PagingError(f"vertex {vertex!r} is not covered by the blocking")
        if self._last_copy is not None:
            others = [bid for bid in candidates if bid[0] != self._last_copy]
            if others:
                choice = others[0]
                self._last_copy = choice[0]
                return choice
        choice = self._fallback.choose(vertex, blocking, memory)
        self._last_copy = choice[0]
        return choice


class FarthestFaultPolicy(BlockChoicePolicy):
    """Read the candidate that pushes the next fault farthest away,
    *given what is already in memory*.

    This is the literal rule inside the proofs of Lemmas 20/22/26: the
    pager retains the block being stepped out of (LRU does that), and
    the incoming block is chosen so that the distance from the
    pathfront to the nearest vertex covered by neither memory nor the
    incoming block is maximal. Per-block interior distance is not
    enough at tile corners — stepping out near a corner of the old
    tile leaves both candidate tiles shallow on one side, but one of
    them combines with the *retained* old tile to buy the full
    ``side/4`` guarantee.

    Cost: one bounded BFS per candidate per fault.
    """

    def __init__(self, graph: Graph, max_radius: int | None = None) -> None:
        self._graph = graph
        self._max_radius = max_radius

    def choose(self, vertex: Vertex, blocking: Blocking, memory: Memory) -> BlockId:
        candidates = blocking.blocks_for(vertex)
        if not candidates:
            raise PagingError(f"vertex {vertex!r} is not covered by the blocking")
        if len(candidates) == 1:
            return candidates[0]
        survivors = self._surviving_coverage(memory, blocking.block_size)
        best_bid = None
        best_distance = -1
        for bid in candidates:
            block_vertices = blocking.block(bid).vertices
            distance = self._fault_distance(vertex, block_vertices, survivors)
            if distance > best_distance:
                best_distance = distance
                best_bid = bid
        return best_bid

    @staticmethod
    def _surviving_coverage(memory: Memory, incoming_size: int) -> set[Vertex]:
        """The vertices that will still be covered after LRU makes room
        for the incoming block. Ranking candidates against *current*
        memory would overcount: with M = 2B the least-recently-used
        block is about to be flushed, and the proofs' guarantee rests
        only on the retained (just-exited) block."""
        if not isinstance(memory, WeakMemory):
            return memory.covered_vertices()
        budget = memory.capacity - incoming_size
        survivors: set[Vertex] = set()
        for bid in reversed(memory.lru_order()):
            block = memory.resident_block(bid)
            if len(block) <= budget:
                survivors.update(block.vertices)
                budget -= len(block)
        return survivors

    def _fault_distance(self, vertex: Vertex, block_vertices, covered) -> int:
        """BFS distance from ``vertex`` to the nearest vertex in neither
        ``covered`` nor ``block_vertices``; capped by ``max_radius``
        (a cap only matters for ranking ties)."""
        from collections import deque

        seen = {vertex}
        queue = deque([(vertex, 0)])
        while queue:
            u, du = queue.popleft()
            if self._max_radius is not None and du >= self._max_radius:
                return du
            for v in self._graph.neighbors(u):
                if v in seen:
                    continue
                seen.add(v)
                if v not in block_vertices and v not in covered:
                    return du + 1
                queue.append((v, du + 1))
        return len(seen)  # everything reachable is covered

"""Construction cache: memoize expensive, deterministic builds.

The harness rebuilds the same objects over and over — the Table 1
sweep and the parameter sweeps construct identical random-regular
graphs, radii extrema, ball covers, and reduced blockings many times,
and every one of those is a pure function of ``(graph class, params)``.
This module gives them one shared, bounded memo:

* an in-memory LRU keyed by ``(kind, key)`` — ``kind`` names the
  construction ("graph", "radii.min", "ballcover.packing", ...), and
  ``key`` is a hashable tuple of the parameters that determine the
  result (for graph-derived constructions, the graph's
  :meth:`~repro.graphs.base.Graph.cache_key` plus the remaining
  parameters);
* optionally, a pickle spill directory so constructions survive across
  processes and sessions (``--cache-dir`` on the experiments CLI).

Correctness contract: a construction may be cached only if it is a
*deterministic* function of its key, and callers must treat the cached
object as immutable — everything stored here (graphs, blockings, radii)
is shared by reference. Randomized constructions qualify because every
generator in :mod:`repro.graphs.generators` takes an explicit seed,
which then belongs in the key. Objects whose key cannot be stated
(``cache_key() is None``, e.g. a hand-mutated adjacency graph) are
rebuilt every time — :func:`cached` with ``key=None`` simply calls the
builder.

The cache is process-local. The parallel sweep runner forks workers,
so entries built *before* the fork are inherited by every worker for
free; entries built after the fork stay in their worker. The on-disk
store is shared either way (writes are atomic renames).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable


def atomic_write_bytes(path: str | os.PathLike[str], data: bytes) -> None:
    """Write ``data`` to ``path`` via tempfile + :func:`os.replace`.

    The write is crash-atomic: readers see either the old complete
    file or the new complete file, never a truncated mix — the same
    idiom the construction cache's pickle spill uses, shared here so
    result dumps and campaign manifests commit identically. Concurrent
    writers race safely (last rename wins, both files were complete).
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: str | os.PathLike[str], text: str, encoding: str = "utf-8"
) -> None:
    """Text-mode :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`ConstructionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
        }


class ConstructionCache:
    """A bounded LRU memo for deterministic constructions.

    ``maxsize`` bounds the number of in-memory entries; the least
    recently *used* entry is dropped first (the dict is kept in use
    order, the same trick :class:`~repro.core.memory.WeakMemory` uses
    for its recency index). ``disk_dir`` adds a persistent pickle
    store consulted on memory misses and written on builds.
    """

    def __init__(self, maxsize: int = 128, disk_dir: str | None = None) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.disk_dir = disk_dir
        self.stats = CacheStats()
        self._entries: dict[tuple[str, Hashable], Any] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, full_key: tuple[str, Hashable]) -> bool:
        with self._lock:
            return full_key in self._entries

    def get_or_build(
        self, kind: str, key: Hashable, builder: Callable[[], Any]
    ) -> Any:
        """The cached value for ``(kind, key)``, building it on miss.

        The builder runs outside the lock (it may itself consult the
        cache); concurrent misses on the same key may build twice, and
        the first store wins — harmless for deterministic builders.
        """
        full_key = (kind, key)
        with self._lock:
            entries = self._entries
            if full_key in entries:
                self.stats.hits += 1
                value = entries.pop(full_key)
                entries[full_key] = value  # reinsert: keep use order
                return value
            self.stats.misses += 1
        value, from_disk = self._load_from_disk(full_key)
        if not from_disk:
            value = builder()
            self._store_to_disk(full_key, value)
        with self._lock:
            entries = self._entries
            if full_key not in entries:
                while len(entries) >= self.maxsize:
                    entries.pop(next(iter(entries)))
                    self.stats.evictions += 1
                entries[full_key] = value
        return value

    def clear(self) -> None:
        """Drop every in-memory entry (the disk store is untouched)."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> list[tuple[str, Hashable]]:
        """In-memory keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    # -- disk spill ------------------------------------------------------

    def _disk_path(self, full_key: tuple[str, Hashable]) -> str:
        kind, key = full_key
        digest = hashlib.sha256(repr((kind, key)).encode()).hexdigest()[:32]
        safe_kind = "".join(c if c.isalnum() or c in "._-" else "_" for c in kind)
        return os.path.join(self.disk_dir, f"{safe_kind}-{digest}.pkl")

    def _load_from_disk(self, full_key) -> tuple[Any, bool]:
        if self.disk_dir is None:
            return None, False
        try:
            with open(self._disk_path(full_key), "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            # Missing, corrupt, or stale (unimportable) entry: rebuild.
            return None, False
        self.stats.disk_hits += 1
        return value, True

    def _store_to_disk(self, full_key, value) -> None:
        if self.disk_dir is None:
            return
        path = self._disk_path(full_key)
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            atomic_write_bytes(
                path, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            )
            self.stats.disk_writes += 1
        except (OSError, pickle.PickleError):
            pass  # an unspillable value is still served from memory


@dataclass
class _CacheConfig:
    """Process-global cache configuration (see :func:`configure_cache`)."""

    enabled: bool = True
    cache: ConstructionCache = field(default_factory=ConstructionCache)


_config = _CacheConfig()


def get_cache() -> ConstructionCache:
    """The process-global construction cache."""
    return _config.cache


def cache_enabled() -> bool:
    return _config.enabled


def configure_cache(
    maxsize: int | None = None,
    disk_dir: str | None = None,
    enabled: bool | None = None,
) -> ConstructionCache:
    """Reconfigure the global cache; returns the (fresh) instance.

    Passing ``maxsize`` or ``disk_dir`` replaces the cache (dropping
    its entries); ``enabled=False`` makes :func:`cached` bypass it
    entirely (the CLI's ``--no-cache``).
    """
    if enabled is not None:
        _config.enabled = enabled
    if maxsize is not None or disk_dir is not None:
        current = _config.cache
        _config.cache = ConstructionCache(
            maxsize=maxsize if maxsize is not None else current.maxsize,
            disk_dir=disk_dir if disk_dir is not None else current.disk_dir,
        )
    return _config.cache


def cached(kind: str, key: Hashable | None, builder: Callable[[], Any]) -> Any:
    """Memoize ``builder()`` under ``(kind, key)`` in the global cache.

    ``key=None`` means "this object has no stable identity" (e.g. a
    graph without a :meth:`cache_key`): the builder simply runs. The
    same holds while caching is disabled.
    """
    if key is None or not _config.enabled:
        return builder()
    return _config.cache.get_or_build(kind, key, builder)
